//! The invoker: one per VM, owning a container pool and the VM's CPUs.
//!
//! Responsibilities (mirroring the modified OpenWhisk invoker of
//! Section 6.2):
//!
//! * container lifecycle — warm reuse, cold starts, keep-alive reaping,
//!   LRU eviction under memory pressure;
//! * execution under processor sharing on the VM's *current* CPU
//!   allocation (the Harvest Monitor's readings);
//! * admission control — when CPU pressure is at or above the threshold,
//!   new invocations wait in the invoker queue;
//! * health snapshots for the controller's pings.

use std::collections::{BTreeMap, VecDeque};

use hrv_policy::{ColdStartPolicy, FixedKeepAlive, IdleCtx};
use hrv_sim::calendar::{EventCalendar, EventId};
use hrv_sim::ps::{JobId, PsQueue};
use hrv_telemetry::SpanKind;
use hrv_trace::faas::{FunctionId, Invocation};
use hrv_trace::time::{SimDuration, SimTime};

use crate::config::PlatformConfig;
use crate::event::{Event, InvokerIndex};

/// Slack for completion detection: the timer is rounded up to the next
/// microsecond, so finished jobs may retain up to ~rate·1 µs of demand.
const COMPLETION_SLACK: f64 = 1e-5;

/// Lifecycle state of one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Cold start in progress.
    Starting,
    /// Executing an invocation.
    Busy,
    /// Warm, waiting for the next invocation (keep-alive running).
    Idle,
}

/// One function container.
#[derive(Debug)]
pub struct Container {
    /// Container id (unique within the platform).
    pub id: u64,
    /// The function this container serves.
    pub function: FunctionId,
    /// Memory footprint, MiB.
    pub memory_mb: u64,
    /// Current state.
    pub state: ContainerState,
    /// Last time it finished serving (for LRU eviction; doubles as the
    /// idle-span start for warm memory-time accounting).
    pub last_used: SimTime,
    /// Pending keep-alive timer when idle.
    pub keepalive: Option<EventId>,
    /// Born from a cold-start policy's prewarm order (for hit/waste
    /// accounting).
    pub prewarmed: bool,
    /// Invocations this container has finished serving.
    pub served: u64,
}

/// A prewarm order decided at an idle transition, drained by the world
/// into a cross-entity [`Event::Prewarm`] envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrewarmRequest {
    /// The function to pre-spawn for.
    pub function: FunctionId,
    /// Container memory footprint, MiB.
    pub memory_mb: u64,
    /// Envelope delay until the spawn must begin (already floored at one
    /// bus hop and offset by the cold-start delay, so the container is
    /// warm when the policy asked for it).
    pub spawn_delay: SimDuration,
    /// Keep-alive TTL to arm once warm.
    pub ttl: SimDuration,
}

/// An invocation currently executing (or cold-starting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningInvocation {
    /// The invocation.
    pub invocation: Invocation,
    /// Whether it cold-started.
    pub cold: bool,
    /// When execution (or the cold start) began.
    pub exec_start: SimTime,
}

/// Work destroyed by a VM eviction.
#[derive(Debug, Default)]
pub struct EvictedWork {
    /// Invocations that had started executing (or cold-starting).
    pub started: Vec<RunningInvocation>,
    /// Invocations still waiting in the invoker queue.
    pub queued: Vec<Invocation>,
}

/// Health-ping payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSnapshot {
    /// Current CPU allocation of the hosting VM.
    pub cpus: u32,
    /// Cores in use right now.
    pub cpus_in_use: f64,
    /// Memory held by containers, MiB.
    pub memory_used_mb: u64,
    /// Whether the VM has been warned of eviction.
    pub eviction_pending: bool,
    /// Queue + running pressure (for diagnostics).
    pub pressure: f64,
}

/// The invoker state machine.
#[derive(Debug)]
pub struct InvokerState {
    /// Slot index in the platform's invoker table.
    pub index: InvokerIndex,
    /// True between deploy and eviction.
    pub alive: bool,
    /// True once the 30-second eviction warning arrived.
    pub warned: bool,
    /// When the warning arrived (for migration grace budgeting).
    pub warned_at: Option<SimTime>,
    /// Memory capacity, MiB.
    pub memory_mb: u64,
    /// Stale startup/completion events that raced with eviction teardown
    /// and were dropped instead of processed (each one is work already
    /// accounted for through [`EvictedWork`]).
    pub dropped_completions: u64,
    /// CPUs the Harvest VM has allocated — what health pings advertise.
    allocated_cpus: u32,
    /// Straggler derating: the PS queue progresses at
    /// `allocated_cpus * derate`. 1.0 outside fault windows.
    derate: f64,
    ps: PsQueue,
    containers: BTreeMap<u64, Container>,
    /// Invocation parked in each starting container.
    starting: BTreeMap<u64, Invocation>,
    /// Invocations accepted but not yet started (admission / memory).
    queue: VecDeque<Invocation>,
    running: BTreeMap<u64, RunningInvocation>,
    completion_timer: Option<EventId>,
    /// The `(time, job)` pair the completion timer is armed for. Kept so
    /// `rearm_completion` can skip the cancel + reschedule when the PS
    /// queue's next completion has not actually changed — on a hot path
    /// (every deliver/resize/drain) this avoids most calendar churn.
    armed: Option<(SimTime, JobId)>,
    memory_used: u64,
    next_container: u64,
    /// Cores committed to containers still cold-starting.
    starting_cap: f64,
    /// Total cold starts this invoker performed.
    pub cold_starts: u64,
    /// Total warm starts this invoker performed.
    pub warm_starts: u64,
    /// Container lifecycle policy (one instance per invoker; see
    /// `hrv_policy` for the determinism contract).
    policy: Box<dyn ColdStartPolicy>,
    /// Prewarm orders decided this completion tick, drained by the world
    /// into cross-entity envelopes.
    prewarm_requests: Vec<PrewarmRequest>,
    /// TTL to arm when each in-flight prewarmed container becomes warm.
    prewarming: BTreeMap<u64, SimDuration>,
    /// Prewarm containers this invoker spawned.
    pub prewarm_spawns: u64,
    /// Warm starts served by a prewarmed container's first use.
    pub prewarm_hits: u64,
    /// Prewarmed containers destroyed without ever serving.
    pub wasted_prewarms: u64,
    /// Warm memory-time containers spent idle, MiB·s — the "wasted warm
    /// memory" axis of the policy grid. Idle spans still open at run end
    /// are censored.
    pub idle_mib_secs: f64,
    /// Whether lifecycle spans are being collected.
    tel_enabled: bool,
    /// Buffered `(at, invocation, kind)` span events; the world drains
    /// them into the flight recorder under this invoker's entity id
    /// after each event it forwards here. Always empty when telemetry
    /// is off.
    pub(crate) tel: Vec<(SimTime, u64, SpanKind)>,
}

impl InvokerState {
    /// Creates a not-yet-deployed invoker slot.
    pub fn new(index: InvokerIndex, memory_mb: u64) -> Self {
        InvokerState {
            index,
            alive: false,
            warned: false,
            warned_at: None,
            memory_mb,
            dropped_completions: 0,
            allocated_cpus: 0,
            derate: 1.0,
            ps: PsQueue::new(0.0),
            containers: BTreeMap::new(),
            starting: BTreeMap::new(),
            queue: VecDeque::new(),
            running: BTreeMap::new(),
            completion_timer: None,
            armed: None,
            memory_used: 0,
            next_container: 0,
            starting_cap: 0.0,
            cold_starts: 0,
            warm_starts: 0,
            policy: Box::new(FixedKeepAlive),
            prewarm_requests: Vec::new(),
            prewarming: BTreeMap::new(),
            prewarm_spawns: 0,
            prewarm_hits: 0,
            wasted_prewarms: 0,
            idle_mib_secs: 0.0,
            tel_enabled: false,
            tel: Vec::new(),
        }
    }

    /// Turns span collection on or off (default: off). Set at
    /// construction time, alongside [`InvokerState::set_policy`].
    pub fn set_telemetry(&mut self, enabled: bool) {
        self.tel_enabled = enabled;
    }

    /// Installs the container lifecycle policy (default:
    /// [`FixedKeepAlive`]). Call before the first delivery — swapping
    /// policies mid-run would mix decision models.
    pub fn set_policy(&mut self, policy: Box<dyn ColdStartPolicy>) {
        self.policy = policy;
    }

    /// Brings the invoker online with `cpus` CPUs.
    pub fn deploy(&mut self, now: SimTime, cpus: u32) {
        assert!(!self.alive, "invoker {} deployed twice", self.index);
        self.alive = true;
        self.warned = false;
        self.allocated_cpus = cpus;
        self.derate = 1.0;
        self.ps = PsQueue::new(f64::from(cpus));
        self.ps.advance(now);
    }

    /// Current CPU allocation (what the VM advertises; a straggler's
    /// effective capacity may be lower).
    pub fn cpus(&self) -> u32 {
        self.allocated_cpus
    }

    /// Number of invocations waiting in the invoker queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of containers (any state).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Builds the health-ping payload.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            cpus: self.cpus(),
            cpus_in_use: self.ps.cores_in_use(),
            memory_used_mb: self.memory_used,
            eviction_pending: self.warned,
            pressure: self.ps.pressure(),
        }
    }

    /// CPU pressure including containers still cold-starting — the
    /// admission-control reading (`used + committed` over allocated CPUs).
    fn admission_pressure_now(&self) -> f64 {
        let committed = self.ps.cores_in_use() + self.starting_cap;
        let cap = self.ps.capacity();
        if cap <= 0.0 {
            if committed > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            committed / cap
        }
    }

    fn container_id(&mut self) -> u64 {
        let id = (u64::from(self.index) << 32) | self.next_container;
        self.next_container += 1;
        id
    }

    /// Accepts a delivered invocation: queue it and try to start work.
    pub fn deliver(
        &mut self,
        now: SimTime,
        invocation: Invocation,
        cal: &mut impl EventCalendar<Event>,
        cfg: &PlatformConfig,
    ) {
        debug_assert!(self.alive, "delivery to dead invoker");
        self.policy.observe_arrival(invocation.function, now);
        self.queue.push_back(invocation);
        self.drain(now, cal, cfg);
    }

    /// Starts as many queued invocations as admission and memory allow.
    fn drain(&mut self, now: SimTime, cal: &mut impl EventCalendar<Event>, cfg: &PlatformConfig) {
        self.ps.advance(now);
        while let Some(front) = self.queue.front().copied() {
            // Admission control: delay new work when CPU pressure is at or
            // above the threshold (counting cold starts in flight).
            let committed = self.ps.cores_in_use() + self.starting_cap;
            if self.admission_pressure_now() >= cfg.admission_pressure && committed > 0.0 {
                break;
            }
            if let Some(cid) = self.find_idle_container(front.function) {
                self.queue.pop_front();
                self.start_warm(now, cid, front, cal);
            } else if self.make_room(now, front.memory_mb, cal) {
                self.queue.pop_front();
                self.start_cold(now, front, cal, cfg);
            } else {
                // Memory exhausted by busy/starting containers: wait.
                break;
            }
        }
        self.rearm_completion(cal);
    }

    /// Finds an idle warm container for `function`.
    fn find_idle_container(&self, function: FunctionId) -> Option<u64> {
        self.containers
            .values()
            .find(|c| c.state == ContainerState::Idle && c.function == function)
            .map(|c| c.id)
    }

    /// Frees memory for a new container by reaping idle (LRU-first)
    /// containers. Returns false if even that cannot make room.
    /// Prewarmed idle containers are ordinary LRU victims — memory
    /// pressure from real work outranks a speculative spawn.
    fn make_room(
        &mut self,
        now: SimTime,
        needed_mb: u64,
        cal: &mut impl EventCalendar<Event>,
    ) -> bool {
        if needed_mb > self.memory_mb {
            return false;
        }
        while self.memory_mb - self.memory_used < needed_mb {
            let victim = self
                .containers
                .values()
                .filter(|c| c.state == ContainerState::Idle)
                .min_by_key(|c| (c.last_used, c.id))
                .map(|c| c.id);
            match victim {
                Some(cid) => self.destroy_container(now, cid, cal),
                None => return false,
            }
        }
        true
    }

    fn destroy_container(&mut self, now: SimTime, cid: u64, cal: &mut impl EventCalendar<Event>) {
        let c = self
            .containers
            .remove(&cid)
            .expect("destroying unknown container");
        debug_assert_eq!(
            c.state,
            ContainerState::Idle,
            "destroyed a non-idle container"
        );
        if let Some(ev) = c.keepalive {
            cal.cancel(ev);
        }
        self.idle_mib_secs += now.saturating_since(c.last_used).as_secs_f64() * c.memory_mb as f64;
        if c.prewarmed && c.served == 0 {
            self.wasted_prewarms += 1;
        }
        self.memory_used -= c.memory_mb;
    }

    fn start_warm(
        &mut self,
        now: SimTime,
        cid: u64,
        invocation: Invocation,
        cal: &mut impl EventCalendar<Event>,
    ) {
        let c = self
            .containers
            .get_mut(&cid)
            .expect("warm container exists");
        if let Some(ev) = c.keepalive.take() {
            cal.cancel(ev);
        }
        c.state = ContainerState::Busy;
        if c.prewarmed && c.served == 0 {
            self.prewarm_hits += 1;
        }
        self.idle_mib_secs += now.saturating_since(c.last_used).as_secs_f64() * c.memory_mb as f64;
        self.warm_starts += 1;
        if self.tel_enabled {
            self.tel
                .push((now, invocation.id, SpanKind::ExecBegin { cold: false }));
        }
        self.ps.add(
            JobId(cid),
            invocation.duration.as_secs_f64() * invocation.cpu_demand,
            invocation.cpu_demand,
        );
        self.running.insert(
            cid,
            RunningInvocation {
                invocation,
                cold: false,
                exec_start: now,
            },
        );
    }

    fn start_cold(
        &mut self,
        now: SimTime,
        invocation: Invocation,
        cal: &mut impl EventCalendar<Event>,
        cfg: &PlatformConfig,
    ) {
        let cid = self.container_id();
        self.containers.insert(
            cid,
            Container {
                id: cid,
                function: invocation.function,
                memory_mb: invocation.memory_mb,
                state: ContainerState::Starting,
                last_used: now,
                keepalive: None,
                prewarmed: false,
                served: 0,
            },
        );
        self.memory_used += invocation.memory_mb;
        self.cold_starts += 1;
        if self.tel_enabled {
            self.tel
                .push((now, invocation.id, SpanKind::ColdStartBegin));
        }
        self.starting.insert(cid, invocation);
        self.starting_cap += invocation.cpu_demand;
        cal.schedule(
            now.saturating_add(cfg.cold_start_delay),
            Event::StartupDone {
                invoker: self.index,
                container: cid,
            },
        );
    }

    /// A cold container finished starting: begin execution.
    pub fn startup_done(
        &mut self,
        now: SimTime,
        cid: u64,
        cal: &mut impl EventCalendar<Event>,
        cfg: &PlatformConfig,
    ) {
        if !self.alive {
            // Raced with an eviction: the work was already surfaced
            // through `EvictedWork`, so only count the stale event.
            self.dropped_completions += 1;
            return;
        }
        let Some(invocation) = self.starting.remove(&cid) else {
            // Container destroyed by eviction handling; same accounting.
            self.dropped_completions += 1;
            return;
        };
        self.starting_cap = (self.starting_cap - invocation.cpu_demand).max(0.0);
        let c = self
            .containers
            .get_mut(&cid)
            .expect("starting container exists");
        c.state = ContainerState::Busy;
        self.ps.advance(now);
        if self.tel_enabled {
            self.tel
                .push((now, invocation.id, SpanKind::ExecBegin { cold: true }));
        }
        self.ps.add(
            JobId(cid),
            invocation.duration.as_secs_f64() * invocation.cpu_demand + cfg.cold_start_cpu_secs,
            invocation.cpu_demand,
        );
        self.running.insert(
            cid,
            RunningInvocation {
                invocation,
                cold: true,
                exec_start: now,
            },
        );
        self.rearm_completion(cal);
    }

    /// Handles a completion-timer tick: harvest finished jobs, park their
    /// containers as idle, and restart queued work. Returns the finished
    /// invocations.
    pub fn completion_tick(
        &mut self,
        now: SimTime,
        cal: &mut impl EventCalendar<Event>,
        cfg: &PlatformConfig,
    ) -> Vec<RunningInvocation> {
        if !self.alive {
            self.dropped_completions += 1;
            return Vec::new();
        }
        // The event driving this tick is the armed timer (stale timers are
        // always cancelled before re-arming, so they never fire); it has
        // been consumed by the calendar.
        self.completion_timer = None;
        self.armed = None;
        self.ps.advance(now);
        let done = self.ps.take_completed(COMPLETION_SLACK);
        let mut finished = Vec::with_capacity(done.len());
        let mut reap_now: Vec<u64> = Vec::new();
        for JobId(cid) in done {
            let run = self
                .running
                .remove(&cid)
                .expect("completed job has a running record");
            let function = run.invocation.function;
            // Ask the lifecycle policy what to do with the idle
            // container. The peer count excludes this one (still Busy).
            let ctx = IdleCtx {
                now,
                fixed_keep_alive: cfg.keep_alive,
                cold_start_delay: cfg.cold_start_delay,
                bus_latency: cfg.bus_latency,
                idle_peers: self
                    .containers
                    .values()
                    .filter(|c| c.state == ContainerState::Idle && c.function == function)
                    .count(),
            };
            let decision = self.policy.on_idle(function, &ctx);
            let c = self
                .containers
                .get_mut(&cid)
                .expect("completed job has a container");
            c.state = ContainerState::Idle;
            c.last_used = now;
            c.served += 1;
            match decision.keep_alive {
                Some(ttl) => {
                    c.keepalive = Some(cal.schedule(
                        now.saturating_add(ttl),
                        Event::KeepAliveExpired {
                            invoker: self.index,
                            container: cid,
                        },
                    ));
                }
                // Zero keep-alive: reap after the drain pass below, so
                // same-tick queued work may still reuse the container.
                None => reap_now.push(cid),
            }
            if let Some(pw) = decision.prewarm {
                // The spawn must begin a cold start ahead of the warm
                // deadline; the envelope floor is one bus hop.
                let spawn_delay = pw
                    .warm_at
                    .saturating_sub(cfg.cold_start_delay)
                    .max(cfg.bus_latency);
                self.prewarm_requests.push(PrewarmRequest {
                    function,
                    memory_mb: run.invocation.memory_mb,
                    spawn_delay,
                    ttl: pw.ttl,
                });
            }
            finished.push(run);
        }
        self.drain(now, cal, cfg);
        for cid in reap_now {
            if self
                .containers
                .get(&cid)
                .is_some_and(|c| c.state == ContainerState::Idle)
            {
                self.destroy_container(now, cid, cal);
            }
        }
        finished
    }

    /// Drains the prewarm orders decided since the last call; the world
    /// turns each into a cross-entity [`Event::Prewarm`] envelope.
    pub fn take_prewarm_requests(&mut self) -> Vec<PrewarmRequest> {
        std::mem::take(&mut self.prewarm_requests)
    }

    /// Handles a policy's prewarm order: spawn an idle-bound container
    /// for `function` unless one is already warm(ing), the VM is doomed,
    /// or memory cannot be freed. Returns whether a spawn began.
    pub fn start_prewarm(
        &mut self,
        now: SimTime,
        function: FunctionId,
        memory_mb: u64,
        ttl: SimDuration,
        cal: &mut impl EventCalendar<Event>,
        cfg: &PlatformConfig,
    ) -> bool {
        if !self.alive || self.warned {
            return false;
        }
        // An idle or starting container for the function makes the
        // order moot (the keep-alive outlived the prediction, or an
        // invocation already cold-started one).
        if self
            .containers
            .values()
            .any(|c| c.function == function && c.state != ContainerState::Busy)
        {
            return false;
        }
        if !self.make_room(now, memory_mb, cal) {
            return false;
        }
        let cid = self.container_id();
        self.containers.insert(
            cid,
            Container {
                id: cid,
                function,
                memory_mb,
                state: ContainerState::Starting,
                last_used: now,
                keepalive: None,
                prewarmed: true,
                served: 0,
            },
        );
        self.memory_used += memory_mb;
        self.prewarm_spawns += 1;
        self.prewarming.insert(cid, ttl);
        cal.schedule(
            now.saturating_add(cfg.cold_start_delay),
            Event::PrewarmReady {
                invoker: self.index,
                container: cid,
            },
        );
        true
    }

    /// A prewarmed container finished warming: park it idle with its TTL
    /// armed, and let queued work of its function start on it.
    pub fn prewarm_ready(
        &mut self,
        now: SimTime,
        cid: u64,
        cal: &mut impl EventCalendar<Event>,
        cfg: &PlatformConfig,
    ) {
        if !self.alive {
            // Raced with an eviction teardown; same accounting as a
            // stale StartupDone.
            self.dropped_completions += 1;
            return;
        }
        let Some(ttl) = self.prewarming.remove(&cid) else {
            self.dropped_completions += 1;
            return;
        };
        let c = self
            .containers
            .get_mut(&cid)
            .expect("prewarming container exists");
        debug_assert_eq!(c.state, ContainerState::Starting);
        c.state = ContainerState::Idle;
        c.last_used = now;
        c.keepalive = Some(cal.schedule(
            now.saturating_add(ttl),
            Event::KeepAliveExpired {
                invoker: self.index,
                container: cid,
            },
        ));
        self.drain(now, cal, cfg);
    }

    /// Reaps an idle container whose keep-alive expired.
    pub fn keepalive_expired(
        &mut self,
        now: SimTime,
        cid: u64,
        cal: &mut impl EventCalendar<Event>,
    ) {
        if !self.alive {
            return;
        }
        // The timer may have been cancelled logically but already popped;
        // only reap genuinely idle containers.
        if let Some(c) = self.containers.get_mut(&cid) {
            if c.state == ContainerState::Idle {
                c.keepalive = None;
                self.destroy_container(now, cid, cal);
            }
        }
    }

    /// Applies a Harvest VM CPU resize.
    pub fn resize(
        &mut self,
        now: SimTime,
        cpus: u32,
        cal: &mut impl EventCalendar<Event>,
        cfg: &PlatformConfig,
    ) {
        if !self.alive {
            return;
        }
        self.allocated_cpus = cpus;
        self.ps.advance(now);
        self.ps.set_capacity(f64::from(cpus) * self.derate);
        // Growth may unblock queued work; shrink re-plans completions.
        self.drain(now, cal, cfg);
    }

    /// Applies (or, with `factor == 1.0`, clears) a straggler derating:
    /// the VM still advertises its allocated CPUs, but the PS queue only
    /// progresses at `factor` of them — a silent slowdown the controller
    /// can only observe through rising pressure.
    pub fn set_derate(
        &mut self,
        now: SimTime,
        factor: f64,
        cal: &mut impl EventCalendar<Event>,
        cfg: &PlatformConfig,
    ) {
        if !self.alive {
            return;
        }
        self.derate = factor.clamp(0.0, 1.0);
        self.ps.advance(now);
        self.ps
            .set_capacity(f64::from(self.allocated_cpus) * self.derate);
        self.drain(now, cal, cfg);
    }

    /// Records the 30-second eviction warning.
    pub fn warn(&mut self, now: SimTime) {
        if self.alive {
            self.warned = true;
            self.warned_at = Some(now);
        }
    }

    /// Tears the invoker down at eviction time, returning the work that
    /// dies with it.
    pub fn evict(&mut self, now: SimTime, cal: &mut impl EventCalendar<Event>) -> EvictedWork {
        if !self.alive {
            return EvictedWork::default();
        }
        self.alive = false;
        self.warned = false;
        self.warned_at = None;
        self.ps.advance(now);
        if let Some(ev) = self.completion_timer.take() {
            cal.cancel(ev);
        }
        self.armed = None;
        for c in self.containers.values() {
            if let Some(ev) = c.keepalive {
                cal.cancel(ev);
            }
            // Close the idle spans and charge speculative spawns that the
            // eviction kills before they ever served.
            if c.state == ContainerState::Idle {
                self.idle_mib_secs +=
                    now.saturating_since(c.last_used).as_secs_f64() * c.memory_mb as f64;
            }
            if c.prewarmed && c.served == 0 {
                self.wasted_prewarms += 1;
            }
        }
        self.prewarming.clear();
        self.prewarm_requests.clear();
        let mut started: Vec<RunningInvocation> =
            std::mem::take(&mut self.running).into_values().collect();
        for (_, invocation) in std::mem::take(&mut self.starting) {
            started.push(RunningInvocation {
                invocation,
                cold: true,
                exec_start: now,
            });
        }
        let queued = std::mem::take(&mut self.queue).into_iter().collect();
        self.starting_cap = 0.0;
        self.containers.clear();
        self.memory_used = 0;
        self.allocated_cpus = 0;
        self.derate = 1.0;
        self.ps = PsQueue::new(0.0);
        self.ps.advance(now);
        EvictedWork { started, queued }
    }

    /// The running record behind a container, if any.
    pub fn running_invocation(&self, cid: u64) -> Option<&RunningInvocation> {
        self.running.get(&cid)
    }

    /// Lists running invocations whose remaining demand exceeds
    /// `min_remaining_secs` — the migration candidates when the eviction
    /// warning arrives. Returns `(container, remaining_secs, memory_mb)`.
    pub fn migration_candidates(
        &mut self,
        now: SimTime,
        min_remaining_secs: f64,
    ) -> Vec<(u64, f64, u64)> {
        if !self.alive {
            return Vec::new();
        }
        self.ps.advance(now);
        self.running
            .iter()
            .filter_map(|(&cid, run)| {
                let remaining = self.ps.remaining(JobId(cid))?;
                if remaining / run.invocation.cpu_demand > min_remaining_secs {
                    Some((cid, remaining, run.invocation.memory_mb))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Extracts a running invocation for migration: removes its job and
    /// container, returning the invocation state and remaining demand.
    /// Returns `None` if it already completed (or was never here).
    pub fn extract_running(
        &mut self,
        now: SimTime,
        cid: u64,
        cal: &mut impl EventCalendar<Event>,
    ) -> Option<(RunningInvocation, f64)> {
        if !self.alive {
            return None;
        }
        self.ps.advance(now);
        let remaining = self.ps.remaining(JobId(cid))?;
        if remaining <= 0.0 {
            // Finished while the transfer was in flight; the normal
            // completion path will deliver it.
            return None;
        }
        self.ps.remove(JobId(cid));
        let run = self.running.remove(&cid)?;
        let c = self
            .containers
            .remove(&cid)
            .expect("running container exists");
        debug_assert_eq!(c.state, ContainerState::Busy);
        self.memory_used -= c.memory_mb;
        self.rearm_completion(cal);
        Some((run, remaining))
    }

    /// Implants a migrated invocation: creates a busy container (making
    /// room if needed) and resumes the job with its remaining demand.
    /// Returns false — leaving the caller to fail the invocation — when
    /// memory cannot be freed.
    pub fn implant_running(
        &mut self,
        now: SimTime,
        run: RunningInvocation,
        remaining: f64,
        cal: &mut impl EventCalendar<Event>,
    ) -> bool {
        if !self.alive {
            return false;
        }
        self.ps.advance(now);
        if !self.make_room(now, run.invocation.memory_mb, cal) {
            return false;
        }
        let cid = self.container_id();
        self.containers.insert(
            cid,
            Container {
                id: cid,
                function: run.invocation.function,
                memory_mb: run.invocation.memory_mb,
                state: ContainerState::Busy,
                last_used: now,
                keepalive: None,
                prewarmed: false,
                served: 1,
            },
        );
        self.memory_used += run.invocation.memory_mb;
        self.ps
            .add(JobId(cid), remaining, run.invocation.cpu_demand);
        self.running.insert(cid, run);
        self.rearm_completion(cal);
        true
    }

    /// Re-arms the completion timer to the PS queue's next completion.
    ///
    /// Only touches the calendar when the next completion `(time, job)`
    /// actually differs from the armed one: an unchanged head means the
    /// pending timer is still correct and cancel + reschedule would be
    /// pure churn. This matters because `drain` — and through it every
    /// delivery and resize — ends here.
    fn rearm_completion(&mut self, cal: &mut impl EventCalendar<Event>) {
        match self.ps.next_completion() {
            Some(next) => {
                if self.completion_timer.is_some() && self.armed == Some(next) {
                    return;
                }
                if let Some(ev) = self.completion_timer.take() {
                    cal.cancel(ev);
                }
                self.completion_timer = Some(cal.schedule(
                    next.0,
                    Event::Completion {
                        invoker: self.index,
                    },
                ));
                self.armed = Some(next);
            }
            None => {
                if let Some(ev) = self.completion_timer.take() {
                    cal.cancel(ev);
                }
                self.armed = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_trace::faas::AppId;
    use hrv_trace::time::SimDuration;

    fn cfg() -> PlatformConfig {
        PlatformConfig {
            cold_start_delay: SimDuration::from_millis(500),
            cold_start_cpu_secs: 0.0,
            keep_alive: SimDuration::from_secs(60),
            ..PlatformConfig::default()
        }
    }

    fn inv(id: u64, app: u32, dur_secs: f64, mem: u64) -> Invocation {
        Invocation {
            id,
            function: FunctionId {
                app: AppId(app),
                func: 0,
            },
            arrival: SimTime::ZERO,
            duration: SimDuration::from_secs_f64(dur_secs),
            memory_mb: mem,
            cpu_demand: 1.0,
        }
    }

    fn fresh(cpus: u32, mem: u64) -> (InvokerState, hrv_sim::calendar::Calendar<Event>) {
        let mut iv = InvokerState::new(0, mem);
        let cal = hrv_sim::calendar::Calendar::new();
        iv.deploy(SimTime::ZERO, cpus);
        (iv, cal)
    }

    /// Drives the invoker's own timers until quiescent, returning all
    /// finished invocations. Ignores events addressed elsewhere.
    fn drive(
        iv: &mut InvokerState,
        cal: &mut impl EventCalendar<Event>,
        cfg: &PlatformConfig,
        until: SimTime,
    ) -> Vec<RunningInvocation> {
        let mut finished = Vec::new();
        while let Some(at) = cal.peek_time() {
            if at >= until {
                break;
            }
            let ev = cal.pop().unwrap();
            match ev.event {
                Event::StartupDone { container, .. } => iv.startup_done(ev.at, container, cal, cfg),
                Event::Completion { .. } => finished.extend(iv.completion_tick(ev.at, cal, cfg)),
                Event::KeepAliveExpired { container, .. } => {
                    iv.keepalive_expired(ev.at, container, cal);
                }
                Event::PrewarmReady { container, .. } => {
                    iv.prewarm_ready(ev.at, container, cal, cfg);
                }
                _ => {}
            }
        }
        finished
    }

    #[test]
    fn cold_then_warm_start() {
        let (mut iv, mut cal) = fresh(4, 4_096);
        let c = cfg();
        iv.deliver(SimTime::ZERO, inv(0, 1, 1.0, 256), &mut cal, &c);
        assert_eq!(iv.cold_starts, 1);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(10));
        assert_eq!(finished.len(), 1);
        assert!(finished[0].cold);
        // Second invocation of the same function reuses the container.
        iv.deliver(SimTime::from_secs(10), inv(1, 1, 1.0, 256), &mut cal, &c);
        assert_eq!(iv.warm_starts, 1);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(20));
        assert_eq!(finished.len(), 1);
        assert!(!finished[0].cold);
        assert_eq!(iv.container_count(), 1);
    }

    #[test]
    fn keep_alive_reaps_idle_containers() {
        let (mut iv, mut cal) = fresh(4, 4_096);
        let c = cfg();
        iv.deliver(SimTime::ZERO, inv(0, 1, 1.0, 256), &mut cal, &c);
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(500));
        // Keep-alive (60 s) has long expired.
        assert_eq!(iv.container_count(), 0);
        assert_eq!(iv.snapshot().memory_used_mb, 0);
    }

    #[test]
    fn memory_pressure_evicts_lru_idle() {
        // Memory for exactly two 256 MiB containers.
        let (mut iv, mut cal) = fresh(8, 512);
        let c = cfg();
        iv.deliver(SimTime::ZERO, inv(0, 1, 0.5, 256), &mut cal, &c);
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(5));
        iv.deliver(SimTime::from_secs(5), inv(1, 2, 0.5, 256), &mut cal, &c);
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(10));
        assert_eq!(iv.container_count(), 2);
        // A third function forces out the LRU idle container (app 1).
        iv.deliver(SimTime::from_secs(10), inv(2, 3, 0.5, 256), &mut cal, &c);
        assert_eq!(iv.container_count(), 2);
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(15));
        // App 1's container is gone: a new call to it cold-starts
        // (the fourth cold start, after apps 1, 2, and 3).
        iv.deliver(SimTime::from_secs(15), inv(3, 1, 0.5, 256), &mut cal, &c);
        assert_eq!(iv.cold_starts, 4);
    }

    #[test]
    fn admission_control_queues_under_pressure() {
        let (mut iv, mut cal) = fresh(2, 64 * 1024);
        let c = cfg();
        // Two 10-second jobs saturate 2 CPUs; the third waits.
        for i in 0..3 {
            iv.deliver(SimTime::ZERO, inv(i, i as u32, 10.0, 256), &mut cal, &c);
        }
        // Cold starts happen for the first two; third stays queued.
        assert_eq!(iv.cold_starts, 2);
        assert_eq!(iv.queue_len(), 1);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(60));
        assert_eq!(finished.len(), 3);
        assert_eq!(iv.queue_len(), 0);
    }

    #[test]
    fn contention_stretches_execution() {
        let (mut iv, mut cal) = fresh(1, 64 * 1024);
        let c = PlatformConfig {
            admission_pressure: 10.0, // let them contend
            cold_start_delay: SimDuration::ZERO,
            ..cfg()
        };
        // Two 1-core jobs of 2 s on 1 CPU: processor sharing finishes both
        // at ~4 s.
        iv.deliver(SimTime::ZERO, inv(0, 1, 2.0, 256), &mut cal, &c);
        iv.deliver(SimTime::ZERO, inv(1, 2, 2.0, 256), &mut cal, &c);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(60));
        assert_eq!(finished.len(), 2);
        assert_eq!(cal.now(), SimTime::from_secs(4));
    }

    #[test]
    fn resize_to_zero_stalls_and_recovery_resumes() {
        let (mut iv, mut cal) = fresh(2, 4_096);
        let c = cfg();
        iv.deliver(SimTime::ZERO, inv(0, 1, 2.0, 256), &mut cal, &c);
        // Let the cold start complete, then halt all CPUs at t=1.
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(1));
        iv.resize(SimTime::from_secs(1), 0, &mut cal, &c);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(30));
        assert!(finished.is_empty(), "job finished with zero CPUs");
        // CPUs return at t=30: the job resumes and completes.
        iv.resize(SimTime::from_secs(30), 2, &mut cal, &c);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(60));
        assert_eq!(finished.len(), 1);
    }

    #[test]
    fn eviction_returns_all_work() {
        let (mut iv, mut cal) = fresh(1, 64 * 1024);
        let c = cfg();
        for i in 0..4 {
            iv.deliver(SimTime::ZERO, inv(i, i as u32, 30.0, 256), &mut cal, &c);
        }
        iv.warn(SimTime::from_secs(9));
        assert!(iv.snapshot().eviction_pending);
        let work = iv.evict(SimTime::from_secs(10), &mut cal);
        assert_eq!(work.started.len() + work.queued.len(), 4);
        assert!(!iv.alive);
        assert_eq!(iv.container_count(), 0);
        // Post-eviction timers are ignored gracefully.
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(100));
        assert!(finished.is_empty());
    }

    #[test]
    fn stale_startup_after_eviction_is_counted_not_processed() {
        let (mut iv, mut cal) = fresh(1, 64 * 1024);
        let c = cfg();
        iv.deliver(SimTime::ZERO, inv(0, 1, 30.0, 256), &mut cal, &c);
        assert_eq!(iv.cold_starts, 1);
        // Evict before the 500 ms StartupDone fires.
        let work = iv.evict(SimTime::from_micros(100_000), &mut cal);
        assert_eq!(work.started.len(), 1);
        assert_eq!(iv.dropped_completions, 0);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(100));
        assert!(finished.is_empty());
        // The stale StartupDone was dropped and accounted.
        assert_eq!(iv.dropped_completions, 1);
    }

    #[test]
    fn derate_slows_execution_but_not_the_advertised_cpus() {
        let (mut iv, mut cal) = fresh(4, 4_096);
        let c = PlatformConfig {
            cold_start_delay: SimDuration::ZERO,
            admission_pressure: 10.0, // let jobs contend
            ..cfg()
        };
        // Two 4-second 1-core jobs on 4 CPUs would finish at t=4 each;
        // derated to a quarter (1 effective core, GPS share 0.5 each)
        // they finish at t=8.
        iv.deliver(SimTime::ZERO, inv(0, 1, 4.0, 256), &mut cal, &c);
        iv.deliver(SimTime::ZERO, inv(1, 2, 4.0, 256), &mut cal, &c);
        iv.set_derate(SimTime::ZERO, 0.25, &mut cal, &c);
        // Advertised CPUs are unchanged; only effective capacity drops.
        assert_eq!(iv.snapshot().cpus, 4);
        assert_eq!(iv.cpus(), 4);
        // Bound the drive short of the keep-alive expiries so `cal.now()`
        // lands on the last completion.
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(9));
        assert_eq!(finished.len(), 2);
        assert_eq!(cal.now(), SimTime::from_secs(8));
        // Clearing the derate restores full speed for the next pair.
        iv.set_derate(SimTime::from_secs(10), 1.0, &mut cal, &c);
        iv.deliver(SimTime::from_secs(10), inv(2, 1, 4.0, 256), &mut cal, &c);
        iv.deliver(SimTime::from_secs(10), inv(3, 2, 4.0, 256), &mut cal, &c);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(15));
        assert_eq!(finished.len(), 2);
        assert_eq!(cal.now(), SimTime::from_secs(14));
    }

    #[test]
    fn snapshot_reports_state() {
        let (mut iv, mut cal) = fresh(4, 4_096);
        let c = cfg();
        iv.deliver(SimTime::ZERO, inv(0, 1, 5.0, 512), &mut cal, &c);
        let snap = iv.snapshot();
        assert_eq!(snap.cpus, 4);
        assert_eq!(snap.memory_used_mb, 512);
        assert!(!snap.eviction_pending);
    }

    #[test]
    fn oversized_invocation_never_starts() {
        let (mut iv, mut cal) = fresh(4, 256);
        let c = cfg();
        iv.deliver(SimTime::ZERO, inv(0, 1, 1.0, 512), &mut cal, &c);
        assert_eq!(iv.cold_starts, 0);
        assert_eq!(iv.queue_len(), 1);
    }

    fn fid(app: u32) -> FunctionId {
        FunctionId {
            app: AppId(app),
            func: 0,
        }
    }

    #[test]
    fn prewarm_spawns_parks_idle_and_serves_warm() {
        let (mut iv, mut cal) = fresh(4, 4_096);
        let c = cfg();
        assert!(iv.start_prewarm(
            SimTime::ZERO,
            fid(7),
            256,
            SimDuration::from_secs(120),
            &mut cal,
            &c
        ));
        assert_eq!(iv.prewarm_spawns, 1);
        assert_eq!(iv.snapshot().memory_used_mb, 256);
        // After the cold-start delay the container parks idle.
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(1));
        assert_eq!(iv.container_count(), 1);
        // The next invocation of that function warm-starts on it.
        iv.deliver(SimTime::from_secs(1), inv(0, 7, 1.0, 256), &mut cal, &c);
        assert_eq!(iv.cold_starts, 0);
        assert_eq!(iv.warm_starts, 1);
        assert_eq!(iv.prewarm_hits, 1);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(10));
        assert_eq!(finished.len(), 1);
        assert!(!finished[0].cold);
    }

    #[test]
    fn prewarm_skipped_when_function_already_warm() {
        let (mut iv, mut cal) = fresh(4, 4_096);
        let c = cfg();
        iv.deliver(SimTime::ZERO, inv(0, 7, 1.0, 256), &mut cal, &c);
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(10));
        assert_eq!(iv.container_count(), 1);
        // The idle container makes the order moot.
        assert!(!iv.start_prewarm(
            SimTime::from_secs(10),
            fid(7),
            256,
            SimDuration::from_secs(120),
            &mut cal,
            &c
        ));
        assert_eq!(iv.prewarm_spawns, 0);
    }

    #[test]
    fn prewarmed_idle_container_is_an_lru_victim() {
        // Memory for exactly two 256 MiB containers.
        let (mut iv, mut cal) = fresh(8, 512);
        let c = cfg();
        assert!(iv.start_prewarm(
            SimTime::ZERO,
            fid(9),
            256,
            SimDuration::from_secs(600),
            &mut cal,
            &c
        ));
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(1));
        // Two real invocations need both slots: the never-used prewarm
        // is reaped first and counted wasted; memory accounting stays
        // conserved.
        iv.deliver(SimTime::from_secs(1), inv(0, 1, 5.0, 256), &mut cal, &c);
        iv.deliver(SimTime::from_secs(1), inv(1, 2, 5.0, 256), &mut cal, &c);
        assert_eq!(iv.container_count(), 2);
        assert_eq!(iv.snapshot().memory_used_mb, 512);
        assert_eq!(iv.wasted_prewarms, 1);
        assert_eq!(iv.prewarm_hits, 0);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(30));
        assert_eq!(finished.len(), 2);
    }

    #[test]
    fn prewarm_ttl_expiry_reaps_and_counts_waste() {
        let (mut iv, mut cal) = fresh(4, 4_096);
        let c = cfg();
        assert!(iv.start_prewarm(
            SimTime::ZERO,
            fid(3),
            256,
            SimDuration::from_secs(30),
            &mut cal,
            &c
        ));
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(300));
        assert_eq!(iv.container_count(), 0);
        assert_eq!(iv.snapshot().memory_used_mb, 0);
        assert_eq!(iv.wasted_prewarms, 1);
        // ~30 s idle at 256 MiB (cold start ate the first 500 ms).
        assert!(iv.idle_mib_secs > 0.0);
    }

    #[test]
    fn eviction_with_inflight_prewarm_strands_nothing() {
        let (mut iv, mut cal) = fresh(4, 4_096);
        let c = cfg();
        assert!(iv.start_prewarm(
            SimTime::ZERO,
            fid(3),
            256,
            SimDuration::from_secs(120),
            &mut cal,
            &c
        ));
        // Evict before PrewarmReady fires.
        let work = iv.evict(SimTime::from_micros(100_000), &mut cal);
        assert!(work.started.is_empty() && work.queued.is_empty());
        assert_eq!(iv.snapshot().memory_used_mb, 0);
        assert_eq!(iv.wasted_prewarms, 1);
        // The stale PrewarmReady is dropped and accounted, not processed.
        let _ = drive(&mut iv, &mut cal, &c, SimTime::from_secs(100));
        assert_eq!(iv.dropped_completions, 1);
        assert_eq!(iv.container_count(), 0);
    }

    #[test]
    fn null_policy_reaps_on_idle_but_reuses_same_tick() {
        let (mut iv, mut cal) = fresh(4, 4_096);
        let c = cfg();
        iv.set_policy(hrv_policy::ColdStartConfig::Null.build());
        iv.deliver(SimTime::ZERO, inv(0, 1, 1.0, 256), &mut cal, &c);
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(10));
        assert_eq!(finished.len(), 1);
        // No keep-alive: the container is gone the moment it idles.
        assert_eq!(iv.container_count(), 0);
        assert_eq!(iv.snapshot().memory_used_mb, 0);
        // And the next call cold-starts again.
        iv.deliver(SimTime::from_secs(10), inv(1, 1, 1.0, 256), &mut cal, &c);
        assert_eq!(iv.cold_starts, 2);
    }

    #[test]
    fn warm_pool_bounds_idle_containers_per_function() {
        let (mut iv, mut cal) = fresh(8, 64 * 1024);
        let c = PlatformConfig {
            admission_pressure: 10.0,
            ..cfg()
        };
        iv.set_policy(
            hrv_policy::ColdStartConfig::WarmPool(hrv_policy::WarmPoolConfig::default()).build(),
        );
        // Three concurrent calls of one function: three containers, but
        // only one may stay pooled once they all finish.
        for i in 0..3 {
            iv.deliver(SimTime::ZERO, inv(i, 5, 1.0, 256), &mut cal, &c);
        }
        let finished = drive(&mut iv, &mut cal, &c, SimTime::from_secs(30));
        assert_eq!(finished.len(), 3);
        assert_eq!(iv.container_count(), 1);
        assert_eq!(iv.snapshot().memory_used_mb, 256);
    }
}
