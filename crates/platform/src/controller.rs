//! The controller: receives invocations, runs the load-balancing policy,
//! and tracks the fleet through health pings and completion reports
//! (Section 6.2).

use std::collections::{BTreeMap, HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use hrv_lb::policy::LoadBalancer;
use hrv_lb::view::{ClusterView, InvokerId, InvokerView};
use hrv_trace::faas::{FunctionId, Invocation};
use hrv_trace::time::SimTime;

use crate::event::{CompletionReport, ViewDeltaRow};
use crate::invoker::HealthSnapshot;

/// Where an invocation was placed and what the controller committed for it.
#[derive(Debug, Clone, Copy)]
pub struct PlacementInfo {
    /// Target invoker.
    pub invoker: InvokerId,
    /// Memory committed at placement, MiB.
    pub memory_mb: u64,
    /// Expected demand charged to the view, CPU-seconds.
    pub expected_demand_secs: f64,
}

/// An invocation waiting for a placeable invoker.
#[derive(Debug, Clone, Copy)]
pub struct QueuedInvocation {
    /// The invocation.
    pub invocation: Invocation,
    /// When it first failed to place.
    pub since: SimTime,
}

/// Result of asking the controller to route one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Placed on this invoker; a delivery message should be sent.
    Placed(InvokerId),
    /// No invoker available; the invocation joined the controller queue.
    Queued,
}

/// The controller state machine.
pub struct Controller {
    /// The fleet as the controller sees it.
    pub view: ClusterView,
    lb: Box<dyn LoadBalancer>,
    queue: VecDeque<QueuedInvocation>,
    /// In-flight placements by invocation id.
    inflight: HashMap<u64, PlacementInfo>,
    /// Simple learned expectation of per-function exec time (seconds) for
    /// view bookkeeping.
    expected_secs: HashMap<FunctionId, (u64, f64)>,
    rng: StdRng,
    /// When true, every placement-charge mutation also accumulates into
    /// `dirty` — the per-invoker deltas a controller replica broadcasts
    /// to its peers at the next reconcile tick. Off (and free) for the
    /// classic single-replica controller.
    track_deltas: bool,
    /// Net charge deltas since the last [`Controller::take_dirty`], by
    /// invoker index (BTreeMap: deterministic broadcast order).
    dirty: BTreeMap<u32, (i64, i64, f64)>,
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("policy", &self.lb.name())
            .field("invokers", &self.view.len())
            .field("queued", &self.queue.len())
            .field("inflight", &self.inflight.len())
            .finish()
    }
}

impl Controller {
    /// Creates a controller running `lb`, with its own RNG stream.
    pub fn new(lb: Box<dyn LoadBalancer>, seed: u64) -> Self {
        Controller {
            view: ClusterView::new(),
            lb,
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            expected_secs: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            track_deltas: false,
            dirty: BTreeMap::new(),
        }
    }

    /// Turns on per-invoker charge-delta accumulation (replicated
    /// controllers only; the single-replica path never pays for it).
    pub fn enable_delta_tracking(&mut self) {
        self.track_deltas = true;
    }

    /// Accumulates one invoker's charge delta for the next reconcile
    /// broadcast.
    fn note_delta(&mut self, id: InvokerId, mem_mb: i64, inflight: i64, demand_secs: f64) {
        if !self.track_deltas {
            return;
        }
        let d = self.dirty.entry(id.0).or_insert((0, 0, 0.0));
        d.0 += mem_mb;
        d.1 += inflight;
        d.2 += demand_secs;
    }

    /// Drains the pending charge deltas in ascending invoker order —
    /// the payload of one `ViewDelta` broadcast. Empty when nothing
    /// changed since the last tick.
    pub fn take_dirty(&mut self) -> Vec<ViewDeltaRow> {
        std::mem::take(&mut self.dirty)
            .into_iter()
            .map(|(invoker, (m, i, d))| ViewDeltaRow {
                invoker,
                memory_pending_mb: m,
                inflight: i,
                inflight_demand_secs: d,
            })
            .collect()
    }

    /// Applies a peer replica's charge deltas to the local view. Purely
    /// additive load updates: placeability epochs are untouched, so the
    /// MWS covering-set cache stays warm. Invokers this view no longer
    /// tracks (removed between the peer's send and our receive) are
    /// skipped.
    pub fn apply_deltas(&mut self, deltas: &[ViewDeltaRow]) {
        for row in deltas {
            self.view.update(InvokerId(row.invoker), |v| {
                v.memory_pending_mb = v
                    .memory_pending_mb
                    .saturating_add_signed(row.memory_pending_mb);
                v.inflight = v.inflight.saturating_add_signed(
                    row.inflight.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32,
                );
                v.inflight_demand_secs =
                    (v.inflight_demand_secs + row.inflight_demand_secs).max(0.0);
            });
        }
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.lb.name()
    }

    /// Invocations waiting for placement.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// In-flight placements.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    fn expected(&self, f: FunctionId) -> f64 {
        self.expected_secs.get(&f).map(|&(_, m)| m).unwrap_or(1.0)
    }

    fn learn_expected(&mut self, f: FunctionId, secs: f64) {
        let e = self.expected_secs.entry(f).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += (secs - e.1) / e.0 as f64;
    }

    /// Routes a new arrival: placement or controller-side queueing.
    pub fn route(&mut self, now: SimTime, invocation: Invocation) -> RouteOutcome {
        self.lb.on_arrival(invocation.function, now);
        match self.try_place(now, invocation) {
            Some(id) => RouteOutcome::Placed(id),
            None => {
                self.queue.push_back(QueuedInvocation {
                    invocation,
                    since: now,
                });
                RouteOutcome::Queued
            }
        }
    }

    /// One placement attempt with view bookkeeping.
    fn try_place(&mut self, now: SimTime, invocation: Invocation) -> Option<InvokerId> {
        let id = self.lb.place(
            now,
            invocation.function,
            invocation.memory_mb,
            &self.view,
            &mut self.rng,
        )?;
        let expected = self.expected(invocation.function) * invocation.cpu_demand;
        let updated = self.view.update(id, |v| {
            v.memory_pending_mb += invocation.memory_mb;
            v.inflight += 1;
            v.inflight_demand_secs += expected;
        });
        assert!(updated, "policy placed on an unknown invoker");
        self.note_delta(id, invocation.memory_mb as i64, 1, expected);
        self.inflight.insert(
            invocation.id,
            PlacementInfo {
                invoker: id,
                memory_mb: invocation.memory_mb,
                expected_demand_secs: expected,
            },
        );
        Some(id)
    }

    /// Retries queued invocations. Returns `(placed, rejected)` lists:
    /// placed invocations must be delivered; rejected ones exceeded
    /// `timeout` and are dropped.
    pub fn retry_queue(
        &mut self,
        now: SimTime,
        timeout: hrv_trace::time::SimDuration,
    ) -> (Vec<(Invocation, InvokerId)>, Vec<QueuedInvocation>) {
        let mut placed = Vec::new();
        let mut rejected = Vec::new();
        let mut keep = VecDeque::new();
        while let Some(q) = self.queue.pop_front() {
            if now.since(q.since) >= timeout {
                rejected.push(q);
                continue;
            }
            match self.try_place(now, q.invocation) {
                Some(id) => placed.push((q.invocation, id)),
                None => keep.push_back(q),
            }
        }
        self.queue = keep;
        (placed, rejected)
    }

    /// Applies a health ping.
    pub fn on_ping(&mut self, now: SimTime, invoker: InvokerId, snap: HealthSnapshot) {
        self.view.update(invoker, |v| {
            v.total_cpus = snap.cpus;
            v.cpu_in_use = snap.cpus_in_use;
            v.memory_used_mb = snap.memory_used_mb;
            v.eviction_pending = snap.eviction_pending;
            v.healthy = true;
            v.last_ping = now;
        });
    }

    /// Applies a completion report: releases bookkeeping and feeds the
    /// policy's learned statistics.
    pub fn on_report(&mut self, report: &CompletionReport) {
        self.lb
            .on_completion(report.function, report.exec_duration, report.cpu_cores);
        self.learn_expected(report.function, report.exec_duration.as_secs_f64());
        if let Some(info) = self.inflight.remove(&report.invocation) {
            self.view.update(info.invoker, |v| {
                v.memory_pending_mb = v.memory_pending_mb.saturating_sub(info.memory_mb);
                v.inflight = v.inflight.saturating_sub(1);
                v.inflight_demand_secs =
                    (v.inflight_demand_secs - info.expected_demand_secs).max(0.0);
            });
            self.note_delta(
                info.invoker,
                -(info.memory_mb as i64),
                -1,
                -info.expected_demand_secs,
            );
        }
    }

    /// Registers a newly deployed invoker.
    pub fn on_invoker_up(&mut self, now: SimTime, id: InvokerId, cpus: u32, memory_mb: u64) {
        self.view
            .add(InvokerView::register(id, cpus, memory_mb, now));
        self.lb.on_invoker_join(id);
    }

    /// Handles an invoker death: drops it from the view and the policy,
    /// and forgets in-flight placements routed there (their failure
    /// records come from the eviction path).
    pub fn on_invoker_down(&mut self, id: InvokerId) {
        self.view.remove(id);
        self.lb.on_invoker_leave(id);
        self.inflight.retain(|_, info| info.invoker != id);
        // Peers drop the invoker through their own broadcast copy; stale
        // deltas for a corpse would only be skipped on apply.
        self.dirty.remove(&id.0);
    }

    /// Sets or clears quarantine on an invoker. Quarantined invokers take
    /// no new placements but stay registered (they may recover). Returns
    /// true when the flag actually changed.
    pub fn set_quarantined(&mut self, id: InvokerId, quarantined: bool) -> bool {
        match self.view.get(id) {
            Some(v) if v.quarantined != quarantined => {
                self.view.update(id, |v| v.quarantined = quarantined)
            }
            _ => false,
        }
    }

    /// Invokers whose last ping is at least `timeout` old, with their
    /// silence spans — the health-probe sweep's input, ordered by id.
    pub fn silent_invokers(
        &self,
        now: SimTime,
        timeout: hrv_trace::time::SimDuration,
    ) -> Vec<(InvokerId, hrv_trace::time::SimDuration)> {
        self.view
            .all()
            .iter()
            .filter_map(|v| {
                let silence = now.saturating_since(v.last_ping);
                (silence >= timeout).then_some((v.id, silence))
            })
            .collect()
    }

    /// Drops a single in-flight entry (used when a delivery raced a dead
    /// invoker). Returns true if it existed.
    pub fn forget_inflight(&mut self, invocation_id: u64) -> bool {
        if let Some(info) = self.inflight.remove(&invocation_id) {
            self.view.update(info.invoker, |v| {
                v.memory_pending_mb = v.memory_pending_mb.saturating_sub(info.memory_mb);
                v.inflight = v.inflight.saturating_sub(1);
                v.inflight_demand_secs =
                    (v.inflight_demand_secs - info.expected_demand_secs).max(0.0);
            });
            self.note_delta(
                info.invoker,
                -(info.memory_mb as i64),
                -1,
                -info.expected_demand_secs,
            );
            true
        } else {
            false
        }
    }

    /// Re-points an in-flight placement to a new invoker after a live
    /// migration, moving the view bookkeeping with it. Returns false if
    /// the invocation is unknown (already completed).
    pub fn migrate_inflight(&mut self, invocation_id: u64, dst: InvokerId) -> bool {
        let Some(info) = self.inflight.get_mut(&invocation_id) else {
            return false;
        };
        let src = info.invoker;
        let (memory_mb, expected) = (info.memory_mb, info.expected_demand_secs);
        info.invoker = dst;
        self.view.update(src, |v| {
            v.memory_pending_mb = v.memory_pending_mb.saturating_sub(memory_mb);
            v.inflight = v.inflight.saturating_sub(1);
            v.inflight_demand_secs = (v.inflight_demand_secs - expected).max(0.0);
        });
        self.view.update(dst, |v| {
            v.memory_pending_mb += memory_mb;
            v.inflight += 1;
            v.inflight_demand_secs += expected;
        });
        self.note_delta(src, -(memory_mb as i64), -1, -expected);
        self.note_delta(dst, memory_mb as i64, 1, expected);
        true
    }

    /// The least-loaded placeable invoker other than `exclude` — the
    /// migration target picker.
    pub fn migration_target(&self, exclude: InvokerId) -> Option<InvokerId> {
        self.view
            .placeable()
            .filter(|v| v.id != exclude)
            .min_by(|a, b| {
                a.weighted_load(hrv_lb::view::LoadWeights::default())
                    .total_cmp(&b.weighted_load(hrv_lb::view::LoadWeights::default()))
            })
            .map(|v| v.id)
    }

    /// Total placeable CPUs the controller believes exist.
    pub fn placeable_cpus(&self) -> u32 {
        self.view.total_cpus()
    }

    /// Remaining queued invocations (drained at shutdown for censoring).
    pub fn drain_queue(&mut self) -> Vec<QueuedInvocation> {
        self.queue.drain(..).collect()
    }

    /// Remaining in-flight invocation ids (censored at shutdown).
    pub fn inflight_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.inflight.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_lb::policy::PolicyKind;
    use hrv_trace::faas::AppId;
    use hrv_trace::time::SimDuration;

    fn inv(id: u64, app: u32) -> Invocation {
        Invocation {
            id,
            function: FunctionId {
                app: AppId(app),
                func: 0,
            },
            arrival: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            memory_mb: 256,
            cpu_demand: 1.0,
        }
    }

    fn controller_with(n: u32) -> Controller {
        let mut c = Controller::new(PolicyKind::Jsq.build(), 7);
        for i in 0..n {
            c.on_invoker_up(SimTime::ZERO, InvokerId(i), 8, 64 * 1024);
        }
        c
    }

    #[test]
    fn route_places_and_bookkeeps() {
        let mut c = controller_with(2);
        let out = c.route(SimTime::ZERO, inv(0, 1));
        let RouteOutcome::Placed(id) = out else {
            panic!("expected placement")
        };
        let v = c.view.get(id).unwrap();
        assert_eq!(v.memory_pending_mb, 256);
        assert_eq!(v.inflight, 1);
        assert_eq!(c.inflight_len(), 1);
    }

    #[test]
    fn report_releases_bookkeeping() {
        let mut c = controller_with(1);
        let RouteOutcome::Placed(id) = c.route(SimTime::ZERO, inv(0, 1)) else {
            panic!()
        };
        c.on_report(&CompletionReport {
            function: inv(0, 1).function,
            invocation: 0,
            memory_mb: 256,
            exec_duration: SimDuration::from_secs(2),
            cpu_cores: 1.0,
            cold: true,
            arrival: SimTime::ZERO,
        });
        let v = c.view.get(id).unwrap();
        assert_eq!(v.memory_pending_mb, 0);
        assert_eq!(v.inflight, 0);
        assert_eq!(c.inflight_len(), 0);
        // Expected duration learned.
        assert!((c.expected(inv(0, 1).function) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fleet_queues_and_retry_places() {
        let mut c = Controller::new(PolicyKind::Jsq.build(), 7);
        assert_eq!(c.route(SimTime::ZERO, inv(0, 1)), RouteOutcome::Queued);
        assert_eq!(c.queue_len(), 1);
        c.on_invoker_up(SimTime::from_secs(1), InvokerId(0), 8, 64 * 1024);
        let (placed, rejected) = c.retry_queue(SimTime::from_secs(1), SimDuration::from_secs(60));
        assert_eq!(placed.len(), 1);
        assert!(rejected.is_empty());
        assert_eq!(c.queue_len(), 0);
    }

    #[test]
    fn retry_rejects_after_timeout() {
        let mut c = Controller::new(PolicyKind::Jsq.build(), 7);
        c.route(SimTime::ZERO, inv(0, 1));
        let (placed, rejected) = c.retry_queue(SimTime::from_secs(120), SimDuration::from_secs(60));
        assert!(placed.is_empty());
        assert_eq!(rejected.len(), 1);
    }

    #[test]
    fn ping_updates_view() {
        let mut c = controller_with(1);
        c.on_ping(
            SimTime::from_secs(5),
            InvokerId(0),
            HealthSnapshot {
                cpus: 3,
                cpus_in_use: 2.5,
                memory_used_mb: 1_000,
                eviction_pending: true,
                pressure: 0.8,
            },
        );
        let v = c.view.get(InvokerId(0)).unwrap();
        assert_eq!(v.total_cpus, 3);
        assert_eq!(v.cpu_in_use, 2.5);
        assert!(v.eviction_pending);
        assert_eq!(v.last_ping, SimTime::from_secs(5));
    }

    #[test]
    fn invoker_down_cleans_up() {
        let mut c = controller_with(2);
        // Route a few invocations; some land on each invoker.
        for i in 0..6 {
            c.route(SimTime::ZERO, inv(i, i as u32));
        }
        let before = c.inflight_len();
        c.on_invoker_down(InvokerId(0));
        assert!(c.view.get(InvokerId(0)).is_none());
        assert!(c.inflight_len() < before);
    }

    #[test]
    fn quarantine_blocks_placement_until_cleared() {
        let mut c = controller_with(1);
        assert!(c.set_quarantined(InvokerId(0), true));
        assert!(!c.set_quarantined(InvokerId(0), true)); // idempotent
        assert_eq!(c.route(SimTime::ZERO, inv(0, 1)), RouteOutcome::Queued);
        assert_eq!(c.placeable_cpus(), 0);
        assert!(c.set_quarantined(InvokerId(0), false));
        let (placed, _) = c.retry_queue(SimTime::from_secs(1), SimDuration::from_secs(60));
        assert_eq!(placed.len(), 1);
        // Unknown invokers are a no-op.
        assert!(!c.set_quarantined(InvokerId(9), true));
    }

    #[test]
    fn silent_invokers_reports_stale_pings() {
        let mut c = controller_with(2);
        c.on_ping(
            SimTime::from_secs(10),
            InvokerId(1),
            HealthSnapshot {
                cpus: 8,
                cpus_in_use: 0.0,
                memory_used_mb: 0,
                eviction_pending: false,
                pressure: 0.0,
            },
        );
        let silent = c.silent_invokers(SimTime::from_secs(12), SimDuration::from_secs(3));
        assert_eq!(silent.len(), 1);
        assert_eq!(silent[0].0, InvokerId(0));
        assert_eq!(silent[0].1, SimDuration::from_secs(12));
    }

    #[test]
    fn delta_tracking_roundtrips_between_replicas() {
        let mut a = controller_with(2);
        a.enable_delta_tracking();
        let mut b = controller_with(2);
        let RouteOutcome::Placed(id) = a.route(SimTime::ZERO, inv(0, 1)) else {
            panic!()
        };
        let deltas = a.take_dirty();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].invoker, id.0);
        b.apply_deltas(&deltas);
        let v = b.view.get(id).unwrap();
        assert_eq!(v.memory_pending_mb, 256);
        assert_eq!(v.inflight, 1);
        // The completion's release flows back as a negative delta.
        a.on_report(&CompletionReport {
            function: inv(0, 1).function,
            invocation: 0,
            memory_mb: 256,
            exec_duration: SimDuration::from_secs(2),
            cpu_cores: 1.0,
            cold: false,
            arrival: SimTime::ZERO,
        });
        b.apply_deltas(&a.take_dirty());
        let v = b.view.get(id).unwrap();
        assert_eq!(v.memory_pending_mb, 0);
        assert_eq!(v.inflight, 0);
        // Deltas for invokers the receiver no longer tracks are skipped.
        a.route(SimTime::ZERO, inv(1, 1));
        b.on_invoker_down(id);
        b.apply_deltas(&a.take_dirty());
        // Untracked controllers accumulate nothing.
        assert!(b.take_dirty().is_empty());
    }

    #[test]
    fn forget_inflight_releases_view() {
        let mut c = controller_with(1);
        let RouteOutcome::Placed(id) = c.route(SimTime::ZERO, inv(0, 1)) else {
            panic!()
        };
        assert!(c.forget_inflight(0));
        assert!(!c.forget_inflight(0));
        assert_eq!(c.view.get(id).unwrap().inflight, 0);
    }
}
