//! Platform-side telemetry plumbing: the per-world [`TelemetrySink`].
//!
//! The sink owns this world's slice of the flight recorder plus the
//! invocation-scoped bookkeeping the phase attribution needs (final
//! dispatch bus-hop timestamps). It is a strict no-op when built from
//! [`TelemetryConfig::Off`]: no ring allocation, no map inserts, no
//! calendar or RNG interaction — disabled runs stay byte-identical to a
//! build without the sink (pinned by the golden fingerprints in
//! `tests/determinism.rs`).

use std::collections::HashMap;

use hrv_telemetry::{FlightRecorder, SpanKind, TelemetryConfig};
use hrv_trace::time::SimTime;

/// Bus-hop timestamps of an invocation's most recent dispatch. On a
/// re-dispatch the entry is overwritten, so the attempt that eventually
/// completes is the one the phase split describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// When the controller put the dispatch on the bus.
    pub sent_at: SimTime,
    /// When the invoker took it off the bus.
    pub delivered_at: SimTime,
}

/// One world's telemetry state. Sharded runs hold one sink per shard;
/// the recorders merge disjointly because every entity records on
/// exactly one shard.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    enabled: bool,
    dump_last: usize,
    /// The bounded per-entity span rings.
    pub recorder: FlightRecorder,
    /// Final-dispatch hop per in-flight invocation id.
    inflight: HashMap<u64, Hop>,
}

impl TelemetrySink {
    /// Builds the sink from the platform config's telemetry knob.
    pub fn new(cfg: &TelemetryConfig) -> Self {
        TelemetrySink {
            enabled: cfg.enabled(),
            dump_last: cfg.dump_last(),
            recorder: FlightRecorder::new(cfg.ring_capacity()),
            inflight: HashMap::new(),
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// How many trailing events a crash dump should include.
    pub fn dump_last(&self) -> usize {
        self.dump_last
    }

    /// Records one span event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, entity: u32, at: SimTime, invocation: u64, kind: SpanKind) {
        if self.enabled {
            self.recorder.record(entity, at, invocation, kind);
        }
    }

    /// Notes the bus hop of a delivery; overwrites any earlier attempt.
    pub fn note_hop(&mut self, invocation: u64, sent_at: SimTime, delivered_at: SimTime) {
        if self.enabled {
            self.inflight.insert(
                invocation,
                Hop {
                    sent_at,
                    delivered_at,
                },
            );
        }
    }

    /// Takes the hop entry for a finishing (or permanently lost)
    /// invocation.
    pub fn take_hop(&mut self, invocation: u64) -> Option<Hop> {
        if !self.enabled {
            return None;
        }
        self.inflight.remove(&invocation)
    }

    /// Drains an invoker's buffered span events into the recorder under
    /// the invoker's entity id. The buffer stays empty (and allocation-
    /// free) for disabled runs because invokers only push when enabled.
    pub fn drain(&mut self, entity: u32, buf: &mut Vec<(SimTime, u64, SpanKind)>) {
        if buf.is_empty() {
            return;
        }
        for (at, invocation, kind) in buf.drain(..) {
            self.recorder.record(entity, at, invocation, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = TelemetrySink::new(&TelemetryConfig::Off);
        s.record(0, SimTime::from_micros(1), 7, SpanKind::Arrival);
        s.note_hop(7, SimTime::from_micros(1), SimTime::from_micros(3));
        assert!(s.recorder.is_empty());
        assert!(s.take_hop(7).is_none());
    }

    #[test]
    fn hop_overwrites_on_redispatch() {
        let mut s = TelemetrySink::new(&TelemetryConfig::on());
        s.note_hop(7, SimTime::from_micros(1), SimTime::from_micros(3));
        s.note_hop(7, SimTime::from_micros(10), SimTime::from_micros(12));
        let hop = s.take_hop(7).unwrap();
        assert_eq!(hop.sent_at, SimTime::from_micros(10));
        assert!(s.take_hop(7).is_none(), "taken exactly once");
    }

    #[test]
    fn drain_moves_buffered_events_under_the_entity() {
        let mut s = TelemetrySink::new(&TelemetryConfig::on());
        let mut buf = vec![(
            SimTime::from_micros(5),
            9,
            SpanKind::ExecBegin { cold: true },
        )];
        s.drain(4, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(s.recorder.len(), 1);
        assert_eq!(s.recorder.canonical_events()[0].entity, 4);
    }
}
