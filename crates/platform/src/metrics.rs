//! Metrics collection and aggregation.
//!
//! Two tiers of fidelity share one collector:
//!
//! * [`StreamingMetrics`] — always on, constant memory: log-binned
//!   latency/execution histograms, per-outcome and cold-start counters,
//!   Welford moments, and a deterministically decimated utilization time
//!   series. O(bins) space regardless of how many invocations a run
//!   replays, which is what lets the scale bench drive 10⁸+ invocations.
//! * the per-record sink (`records`/`samples`) — one row per finished
//!   invocation, O(invocations) memory. On by default so figure
//!   generation and tests keep exact data; opt out via
//!   [`MetricsCollector::streaming_only`] (the platform wires this to
//!   `PlatformConfig::record_invocations`).
//!
//! [`RunMetrics`] reduces the record sink to the quantities the paper
//! reports — P99 latency, cold-start rate, failure rate, throughput.

use serde::{Deserialize, Serialize};

use hrv_telemetry::{CounterId, CounterRegistry, LatencyAttribution, PhaseRecord, PhaseTotals};
use hrv_trace::stats::{percentile_unsorted, Cdf, LogHistogram, OnlineStats};
use hrv_trace::time::{SimDuration, SimTime};

/// How one invocation's life ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Finished and reported back.
    Completed,
    /// Killed by a VM eviction while running, starting, or queued on the
    /// evicted invoker.
    FailedEviction,
    /// The controller could not place it within the placement timeout.
    Rejected,
    /// Still in flight when the measurement window closed (excluded from
    /// latency statistics).
    Censored,
    /// Permanently lost to an injected fault: a dropped dispatch message
    /// with recovery disabled, or destroyed work whose retries were
    /// exhausted (or whose retry budget ran out).
    Lost,
}

/// One finished invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Invocation id from the trace.
    pub id: u64,
    /// Arrival time at the controller.
    pub arrival: SimTime,
    /// When the record was finalized (completion/failure/rejection).
    pub finished: SimTime,
    /// End-to-end latency in seconds (arrival → completion), only
    /// meaningful for `Completed`.
    pub latency_secs: f64,
    /// Pure execution duration in seconds (only for `Completed`).
    pub exec_secs: f64,
    /// Whether it cold-started (only meaningful once started).
    pub cold: bool,
    /// Whether execution had begun (false for work killed or rejected
    /// while still queued).
    pub exec_started: bool,
    /// Outcome.
    pub outcome: Outcome,
}

/// A point of the cluster utilization time series (Figure 20).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Sample time.
    pub at: SimTime,
    /// Total CPUs across live invokers.
    pub total_cpus: u32,
    /// Cores in use across live invokers.
    pub cpus_in_use: f64,
}

/// One invoker's contribution to a utilization grid tick. The platform
/// samples per invoker (so sharded runs can sample locally and merge);
/// [`MetricsCollector::canonicalize_records`] coalesces the buffered
/// rows into fleet-wide [`UtilizationSample`]s, summing in invoker order
/// so the float totals are bit-identical for every shard count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartialSample {
    /// Sample time (a multiple of the sampling interval).
    pub at: SimTime,
    /// The sampled invoker.
    pub invoker: u32,
    /// The invoker's allocated CPUs.
    pub total_cpus: u32,
    /// The invoker's cores in use.
    pub cpus_in_use: f64,
}

/// Per-controller-replica occupancy counters (the perfsmoke
/// `controller_occupancy` section): how evenly the partitioned placement
/// path spreads work across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaOccupancy {
    /// The replica index.
    pub replica: u32,
    /// Placement decisions the replica made (dispatches, retries,
    /// re-dispatches).
    pub placements: u64,
    /// Controller-bound envelopes the replica consumed.
    pub envelopes: u64,
}

/// A bounded utilization time series with deterministic decimation: when
/// the buffer fills, every other retained point is dropped and the keep
/// stride doubles. No RNG (the simulator's determinism contract), O(cap)
/// memory forever, and the survivors are always the samples at multiples
/// of the current stride — an evenly thinned view of the full series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecimatedSeries {
    cap: usize,
    stride: u64,
    seen: u64,
    points: Vec<UtilizationSample>,
}

impl DecimatedSeries {
    /// Creates a series keeping at most `cap` points.
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2`.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 2, "series needs room to decimate");
        DecimatedSeries {
            cap,
            stride: 1,
            seen: 0,
            points: Vec::new(),
        }
    }

    /// Offers one sample; it is kept iff it falls on the current stride.
    pub fn push(&mut self, sample: UtilizationSample) {
        if self.seen.is_multiple_of(self.stride) {
            if self.points.len() == self.cap {
                let mut i = 0usize;
                self.points.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
            // Re-check: after doubling, this sample may fall off-stride.
            if self.seen.is_multiple_of(self.stride) {
                self.points.push(sample);
            }
        }
        self.seen += 1;
    }

    /// Samples offered so far (kept or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained, evenly thinned points in time order.
    pub fn points(&self) -> &[UtilizationSample] {
        &self.points
    }
}

/// Constant-memory aggregates over a run: O(bins) space no matter how many
/// invocations pass through. Always maintained by [`MetricsCollector`];
/// the per-record sink is the optional tier.
///
/// Histogram percentiles are within one bin width (a factor of
/// `bin_ratio()` ≈ 12 % for the default 160-bin / 8-decade layout) of the
/// exact order statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingMetrics {
    /// End-to-end latency of completed invocations, seconds.
    pub latency_hist: LogHistogram,
    /// Pure execution time of completed invocations, seconds.
    pub exec_hist: LogHistogram,
    /// Welford moments of completed latency (exact mean/min/max).
    pub latency_stats: OnlineStats,
    /// Finished rows seen (any outcome).
    pub finished: u64,
    /// Completed invocations.
    pub completed: u64,
    /// Invocations killed by evictions.
    pub eviction_failures: u64,
    /// Invocations rejected at placement.
    pub rejections: u64,
    /// Invocations still in flight at window close.
    pub censored: u64,
    /// Invocations permanently lost to faults (dropped dispatches without
    /// recovery, or retries exhausted).
    pub lost: u64,
    /// Re-dispatch attempts fired by recovery (every `Redispatch` event).
    pub retries: u64,
    /// Destroyed in-flight work salvaged into the retry path (unwarned
    /// kills, evictions, dead deliveries) — a subset of what `retries`
    /// counts, which also covers lost dispatch messages.
    pub redispatches: u64,
    /// Total invoker-seconds spent quarantined out of placement.
    pub quarantine_secs: f64,
    /// Invocations whose execution began.
    pub started: u64,
    /// Started invocations that cold-started.
    pub cold_started: u64,
    /// Earliest arrival among finished rows.
    pub first_arrival: Option<SimTime>,
    /// Latest finish time among finished rows.
    pub last_finished: Option<SimTime>,
    /// Moments of the cores-in-use utilization signal.
    pub utilization: OnlineStats,
    /// Bounded utilization time series (Figure 20 shape at any scale).
    pub util_series: DecimatedSeries,
    /// Containers spawned by a cold-start policy's prewarm orders.
    pub prewarm_spawns: u64,
    /// Warm starts served by a prewarmed container's first use.
    pub prewarm_hits: u64,
    /// Prewarmed containers destroyed without ever serving.
    pub wasted_prewarms: u64,
    /// Warm memory-time containers spent idle, MiB·s — the "wasted warm
    /// memory" axis of the cold-start policy grid.
    pub idle_mib_secs: f64,
}

/// Default latency/exec histogram span: 100 µs to 10⁴ s in 160 log bins
/// (8 decades, bin ratio 10^0.05 ≈ 1.122).
const HIST_LO: f64 = 1e-4;
const HIST_HI: f64 = 1e4;
const HIST_BINS: usize = 160;
/// Default cap on the decimated utilization series.
const UTIL_SERIES_CAP: usize = 4_096;

impl Default for StreamingMetrics {
    fn default() -> Self {
        StreamingMetrics {
            latency_hist: LogHistogram::new(HIST_LO, HIST_HI, HIST_BINS),
            exec_hist: LogHistogram::new(HIST_LO, HIST_HI, HIST_BINS),
            latency_stats: OnlineStats::new(),
            finished: 0,
            completed: 0,
            eviction_failures: 0,
            rejections: 0,
            censored: 0,
            lost: 0,
            retries: 0,
            redispatches: 0,
            quarantine_secs: 0.0,
            started: 0,
            cold_started: 0,
            first_arrival: None,
            last_finished: None,
            utilization: OnlineStats::new(),
            util_series: DecimatedSeries::new(UTIL_SERIES_CAP),
            prewarm_spawns: 0,
            prewarm_hits: 0,
            wasted_prewarms: 0,
            idle_mib_secs: 0.0,
        }
    }
}

impl StreamingMetrics {
    /// Folds one finished invocation into the aggregates.
    pub fn record(&mut self, r: &InvocationRecord) {
        self.finished += 1;
        self.first_arrival = Some(match self.first_arrival {
            Some(t) => t.min(r.arrival),
            None => r.arrival,
        });
        self.last_finished = Some(match self.last_finished {
            Some(t) => t.max(r.finished),
            None => r.finished,
        });
        if r.exec_started {
            self.started += 1;
            if r.cold {
                self.cold_started += 1;
            }
        }
        match r.outcome {
            Outcome::Completed => {
                self.completed += 1;
                self.latency_hist.record(r.latency_secs);
                self.exec_hist.record(r.exec_secs);
                self.latency_stats.push(r.latency_secs);
            }
            Outcome::FailedEviction => self.eviction_failures += 1,
            Outcome::Rejected => self.rejections += 1,
            Outcome::Censored => self.censored += 1,
            Outcome::Lost => self.lost += 1,
        }
    }

    /// Folds one utilization sample into the reservoir and moments.
    pub fn record_sample(&mut self, s: &UtilizationSample) {
        self.utilization.push(s.cpus_in_use);
        self.util_series.push(*s);
    }

    /// The `p`-th latency percentile estimate (within one histogram bin
    /// width of exact), or `None` when nothing completed.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        self.latency_hist.percentile(p)
    }

    /// Cold starts over started invocations.
    pub fn cold_start_rate(&self) -> f64 {
        if self.started == 0 {
            0.0
        } else {
            self.cold_started as f64 / self.started as f64
        }
    }

    /// Eviction failures over finished rows.
    pub fn failure_rate(&self) -> f64 {
        if self.finished == 0 {
            0.0
        } else {
            self.eviction_failures as f64 / self.finished as f64
        }
    }

    /// Merges another shard's aggregates into this one. Counters add,
    /// extrema combine, and the histograms merge bin-wise; the Welford
    /// moments use the parallel-merge formula, so the exact float bits of
    /// `latency_stats` may differ from a sequential fold (they are
    /// outside the sharded driver's byte-identity contract). The bounded
    /// utilization series cannot be re-interleaved after decimation, so
    /// it keeps whichever side has points (harmless: sharded worlds
    /// buffer per-invoker partial rows and only feed the series after
    /// the merge, so at merge time both sides are empty).
    pub fn merge(&mut self, other: &StreamingMetrics) {
        self.latency_hist.merge(&other.latency_hist);
        self.exec_hist.merge(&other.exec_hist);
        self.latency_stats.merge(&other.latency_stats);
        self.finished += other.finished;
        self.completed += other.completed;
        self.eviction_failures += other.eviction_failures;
        self.rejections += other.rejections;
        self.censored += other.censored;
        self.lost += other.lost;
        self.retries += other.retries;
        self.redispatches += other.redispatches;
        self.quarantine_secs += other.quarantine_secs;
        self.started += other.started;
        self.cold_started += other.cold_started;
        self.first_arrival = match (self.first_arrival, other.first_arrival) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_finished = match (self.last_finished, other.last_finished) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.utilization.merge(&other.utilization);
        if self.util_series.points().is_empty() && !other.util_series.points().is_empty() {
            self.util_series = other.util_series.clone();
        }
        self.prewarm_spawns += other.prewarm_spawns;
        self.prewarm_hits += other.prewarm_hits;
        self.wasted_prewarms += other.wasted_prewarms;
        self.idle_mib_secs += other.idle_mib_secs;
    }

    /// Completions per second over the observed span.
    pub fn throughput_rps(&self) -> f64 {
        let span = match (self.first_arrival, self.last_finished) {
            (Some(a), Some(b)) => b.saturating_since(a),
            _ => SimDuration::ZERO,
        };
        if span.is_zero() {
            0.0
        } else {
            self.completed as f64 / span.as_secs_f64()
        }
    }
}

/// Streaming collector filled in by the platform world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsCollector {
    /// Finished invocation rows (empty when the record sink is off).
    pub records: Vec<InvocationRecord>,
    /// Utilization time series (empty when the record sink is off).
    pub samples: Vec<UtilizationSample>,
    /// Per-invoker utilization rows awaiting coalescing. Buffered until
    /// [`MetricsCollector::canonicalize_records`] so sharded runs can
    /// merge every shard's rows first and sum them in invoker order.
    pub partial_samples: Vec<PartialSample>,
    /// Per-controller-replica placement/envelope counts, flushed at
    /// censoring time.
    pub replica_occupancy: Vec<ReplicaOccupancy>,
    /// Constant-memory aggregates, always maintained.
    pub streaming: StreamingMetrics,
    /// Total arrivals seen by the controller.
    pub arrivals: u64,
    /// Warm starts (execution began on an existing container).
    pub warm_starts: u64,
    /// Cold starts (execution required a new container).
    pub cold_starts: u64,
    /// Number of VM evictions that hit the platform.
    pub vm_evictions: u64,
    /// Number of crash-stop kills injected by a fault plan.
    pub vm_crashes: u64,
    /// Invocations killed by evictions.
    pub eviction_failures: u64,
    /// Invocations rejected at placement.
    pub rejections: u64,
    /// Invocations permanently lost to faults.
    pub lost: u64,
    /// Live migrations completed (invocations moved off warned VMs).
    pub migrations: u64,
    /// Times recovery put an invoker into quarantine.
    pub quarantines: u64,
    /// Stale invoker-side events (startup/completion races with eviction
    /// teardown) that were dropped rather than processed.
    pub dropped_completions: u64,
    /// Named-counter registry mirroring the reliability and prewarm
    /// counters above (the `note_*` accessors and
    /// [`MetricsCollector::set_coldstart_totals`] dual-write both views,
    /// so legacy field readers and registry readers always agree).
    pub counters: CounterRegistry,
    /// Per-invocation latency phase rows (telemetry-enabled runs with the
    /// record sink on; empty otherwise).
    pub phases: Vec<PhaseRecord>,
    /// Constant-memory phase sums, maintained whenever telemetry is on —
    /// the streaming tier's view of the attribution.
    pub phase_totals: PhaseTotals,
    /// Whether [`MetricsCollector::set_coldstart_totals`] ran on this
    /// collector — the assign-once guard that keeps shard merges from
    /// double-counting the invoker-summed totals.
    coldstart_installed: bool,
    record_sink: bool,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        MetricsCollector {
            records: Vec::new(),
            samples: Vec::new(),
            partial_samples: Vec::new(),
            replica_occupancy: Vec::new(),
            streaming: StreamingMetrics::default(),
            arrivals: 0,
            warm_starts: 0,
            cold_starts: 0,
            vm_evictions: 0,
            vm_crashes: 0,
            eviction_failures: 0,
            rejections: 0,
            lost: 0,
            migrations: 0,
            quarantines: 0,
            dropped_completions: 0,
            counters: CounterRegistry::new(),
            phases: Vec::new(),
            phase_totals: PhaseTotals::default(),
            coldstart_installed: false,
            record_sink: true,
        }
    }
}

impl MetricsCollector {
    /// Creates a collector with the full per-record sink enabled.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Creates a collector that keeps only the constant-memory aggregates:
    /// `records` and `samples` stay empty no matter how much passes
    /// through.
    pub fn streaming_only() -> Self {
        MetricsCollector {
            record_sink: false,
            ..MetricsCollector::default()
        }
    }

    /// Whether the per-record sink is enabled.
    pub fn records_enabled(&self) -> bool {
        self.record_sink
    }

    /// Records a finished invocation.
    pub fn push(&mut self, record: InvocationRecord) {
        match record.outcome {
            Outcome::FailedEviction => self.eviction_failures += 1,
            Outcome::Rejected => self.rejections += 1,
            Outcome::Lost => self.lost += 1,
            Outcome::Completed | Outcome::Censored => {}
        }
        self.streaming.record(&record);
        if self.record_sink {
            self.records.push(record);
        }
    }

    /// Counts one re-dispatch attempt (a `Redispatch` event firing).
    /// Thin wrapper over the counter registry; the legacy streaming field
    /// is dual-written so existing readers see identical values.
    pub fn note_retry(&mut self) {
        self.streaming.retries += 1;
        self.counters.incr(CounterId::Retries);
    }

    /// Counts one destroyed in-flight invocation salvaged into the retry
    /// path instead of being recorded as a failure.
    pub fn note_redispatch(&mut self) {
        self.streaming.redispatches += 1;
        self.counters.incr(CounterId::Redispatches);
    }

    /// Counts one invoker entering quarantine.
    pub fn note_quarantine(&mut self) {
        self.quarantines += 1;
        self.counters.incr(CounterId::Quarantines);
    }

    /// Accumulates time an invoker spent quarantined.
    pub fn note_quarantine_span(&mut self, span: SimDuration) {
        self.streaming.quarantine_secs += span.as_secs_f64();
        self.counters
            .add(CounterId::QuarantineMicros, span.as_micros());
    }

    /// Folds one invocation's phase split into the collector: the
    /// streaming sums always, the per-invocation row only when the record
    /// sink is on (mirroring [`MetricsCollector::push`]).
    pub fn push_phase(&mut self, phase: PhaseRecord) {
        self.phase_totals.add(&phase);
        if self.record_sink {
            self.phases.push(phase);
        }
    }

    /// Installs the fleet-wide cold-start policy totals (summed at the
    /// invokers, like `dropped_completions`) — assignment, not addition,
    /// so per-shard merges cannot double-count. Must run exactly once per
    /// merged collector, *after* all shard merges; debug builds assert
    /// both directions (here and in [`MetricsCollector::merge`]).
    pub fn set_coldstart_totals(
        &mut self,
        prewarm_spawns: u64,
        prewarm_hits: u64,
        wasted_prewarms: u64,
        idle_mib_secs: f64,
    ) {
        debug_assert!(
            !self.coldstart_installed,
            "cold-start totals assigned twice on one collector"
        );
        self.coldstart_installed = true;
        self.streaming.prewarm_spawns = prewarm_spawns;
        self.streaming.prewarm_hits = prewarm_hits;
        self.streaming.wasted_prewarms = wasted_prewarms;
        self.streaming.idle_mib_secs = idle_mib_secs;
        self.counters
            .assign(CounterId::PrewarmSpawns, prewarm_spawns);
        self.counters.assign(CounterId::PrewarmHits, prewarm_hits);
        self.counters
            .assign(CounterId::WastedPrewarms, wasted_prewarms);
    }

    /// Invocation conservation: every arrival the controller accepted must
    /// end in exactly one record. Returns `(arrivals, accounted)` where
    /// `accounted` sums completions, eviction kills, rejections, censored
    /// rows and fault losses.
    pub fn conservation(&self) -> (u64, u64) {
        let s = &self.streaming;
        (
            self.arrivals,
            s.completed + s.eviction_failures + s.rejections + s.censored + s.lost,
        )
    }

    /// Panics unless arrivals are fully accounted for.
    pub fn assert_conservation(&self) {
        let (arrivals, accounted) = self.conservation();
        assert_eq!(
            arrivals,
            accounted,
            "invocation conservation violated: {arrivals} arrivals vs \
             {accounted} accounted (completed {} + evicted {} + rejected {} \
             + censored {} + lost {})",
            self.streaming.completed,
            self.streaming.eviction_failures,
            self.streaming.rejections,
            self.streaming.censored,
            self.streaming.lost,
        );
    }

    /// Absorbs another shard's collector into this one: rows append,
    /// counters add, streaming aggregates merge. Call
    /// [`MetricsCollector::canonicalize_records`] afterwards to restore
    /// the shard-count-invariant record order.
    pub fn merge(&mut self, other: MetricsCollector) {
        debug_assert!(
            !self.coldstart_installed && !other.coldstart_installed,
            "cold-start totals installed before shard merge (they are \
             fleet-wide sums assigned once, after all merges)"
        );
        self.records.extend(other.records);
        self.samples.extend(other.samples);
        self.partial_samples.extend(other.partial_samples);
        self.replica_occupancy.extend(other.replica_occupancy);
        self.phases.extend(other.phases);
        self.phase_totals.merge(&other.phase_totals);
        self.counters.merge(&other.counters);
        self.streaming.merge(&other.streaming);
        self.arrivals += other.arrivals;
        self.warm_starts += other.warm_starts;
        self.cold_starts += other.cold_starts;
        self.vm_evictions += other.vm_evictions;
        self.vm_crashes += other.vm_crashes;
        self.eviction_failures += other.eviction_failures;
        self.rejections += other.rejections;
        self.lost += other.lost;
        self.migrations += other.migrations;
        self.quarantines += other.quarantines;
        self.dropped_completions += other.dropped_completions;
    }

    /// Sorts the record sink into its canonical order: finish time, then
    /// invocation id, then outcome. Records for different invocations can
    /// share a finish instant (and one invocation can even finalize twice
    /// at the same instant — a completion whose report is still in flight
    /// when the horizon censors it), and their push order depends on
    /// which shard emitted them; this sort is what makes the final
    /// sequence byte-identical for every shard count. Sample rows sort by
    /// time for the same reason.
    pub fn canonicalize_records(&mut self) {
        fn outcome_rank(o: Outcome) -> u8 {
            match o {
                Outcome::Completed => 0,
                Outcome::FailedEviction => 1,
                Outcome::Rejected => 2,
                Outcome::Censored => 3,
                Outcome::Lost => 4,
            }
        }
        self.coalesce_partial_samples();
        self.records
            .sort_by_key(|r| (r.finished, r.id, outcome_rank(r.outcome)));
        self.samples.sort_by_key(|s| s.at);
        self.replica_occupancy.sort_by_key(|r| r.replica);
        self.phases.sort_by_key(|p| (p.finished, p.id));
    }

    /// Folds the buffered per-invoker sample rows into fleet-wide
    /// [`UtilizationSample`]s, one per grid tick. Rows are sorted by
    /// `(at, invoker)` and summed in that order, so the float totals are
    /// bit-identical no matter which shard produced which row.
    fn coalesce_partial_samples(&mut self) {
        if self.partial_samples.is_empty() {
            return;
        }
        let mut rows = std::mem::take(&mut self.partial_samples);
        rows.sort_by_key(|r| (r.at, r.invoker));
        let mut i = 0usize;
        while i < rows.len() {
            let at = rows[i].at;
            let mut total_cpus = 0u32;
            let mut cpus_in_use = 0.0f64;
            while i < rows.len() && rows[i].at == at {
                total_cpus += rows[i].total_cpus;
                cpus_in_use += rows[i].cpus_in_use;
                i += 1;
            }
            self.push_sample(UtilizationSample {
                at,
                total_cpus,
                cpus_in_use,
            });
        }
    }

    /// Buffers one invoker's utilization reading for a grid tick. The
    /// buffer grows with `ticks x invokers` until
    /// [`MetricsCollector::canonicalize_records`] coalesces it — the
    /// price of sampling that merges deterministically across shards.
    pub fn push_partial_sample(&mut self, at: SimTime, invoker: u32, total_cpus: u32, used: f64) {
        self.partial_samples.push(PartialSample {
            at,
            invoker,
            total_cpus,
            cpus_in_use: used,
        });
    }

    /// Records one controller replica's occupancy counters.
    pub fn push_replica_occupancy(&mut self, row: ReplicaOccupancy) {
        self.replica_occupancy.push(row);
    }

    /// Records a utilization sample.
    pub fn push_sample(&mut self, sample: UtilizationSample) {
        self.streaming.record_sample(&sample);
        if self.record_sink {
            self.samples.push(sample);
        }
    }

    /// Reduces the raw rows to aggregate metrics over `[warmup, end)`.
    /// Invocations arriving before `warmup` are discarded (ramp-up bias).
    ///
    /// Requires the per-record sink; a collector built with
    /// [`streaming_only`](Self::streaming_only) should be read through
    /// [`MetricsCollector::streaming`] instead (which aggregates the whole
    /// run without a warmup cut — the documented trade-off of the
    /// constant-memory tier).
    pub fn aggregate(&self, warmup: SimTime) -> RunMetrics {
        let mut arrivals = 0u64;
        let mut completed = 0u64;
        let mut started = 0u64;
        let mut cold = 0u64;
        let mut failures = 0u64;
        let mut rejected = 0u64;
        let mut lost = 0u64;
        let mut first_arrival = SimTime::MAX;
        let mut last_finished = SimTime::ZERO;
        let mut latencies: Vec<f64> = Vec::new();
        for r in &self.records {
            if r.arrival < warmup {
                continue;
            }
            arrivals += 1;
            first_arrival = first_arrival.min(r.arrival);
            last_finished = last_finished.max(r.finished);
            if r.exec_started {
                started += 1;
                if r.cold {
                    cold += 1;
                }
            }
            match r.outcome {
                Outcome::Completed => {
                    completed += 1;
                    latencies.push(r.latency_secs);
                }
                Outcome::FailedEviction => failures += 1,
                Outcome::Rejected => rejected += 1,
                Outcome::Lost => lost += 1,
                Outcome::Censored => {}
            }
        }
        let latency = if latencies.is_empty() {
            None
        } else {
            Some(Cdf::from_samples(latencies))
        };
        let span = if arrivals == 0 {
            SimDuration::ZERO
        } else {
            last_finished.saturating_since(first_arrival)
        };
        RunMetrics {
            arrivals,
            completed,
            eviction_failures: failures,
            rejections: rejected,
            lost,
            cold_start_rate: if started == 0 {
                0.0
            } else {
                cold as f64 / started as f64
            },
            failure_rate: if arrivals == 0 {
                0.0
            } else {
                failures as f64 / arrivals as f64
            },
            throughput_rps: if span.is_zero() {
                0.0
            } else {
                completed as f64 / span.as_secs_f64()
            },
            latency,
            phases: LatencyAttribution::from_rows(
                self.phases
                    .iter()
                    .filter(|p| p.arrival >= warmup)
                    .copied()
                    .collect(),
            ),
        }
    }

    /// Single-percentile fast path over the record sink: fills `buf` with
    /// the completed latencies arriving at or after `warmup` and selects
    /// the `p`-th percentile in O(n) without sorting, reusing `buf`'s
    /// allocation across calls. Matches `aggregate(...).latency_percentile(p)`.
    pub fn latency_percentile_with(
        &self,
        warmup: SimTime,
        p: f64,
        buf: &mut Vec<f64>,
    ) -> Option<f64> {
        buf.clear();
        buf.extend(
            self.records
                .iter()
                .filter(|r| r.arrival >= warmup && r.outcome == Outcome::Completed)
                .map(|r| r.latency_secs),
        );
        if buf.is_empty() {
            None
        } else {
            Some(percentile_unsorted(buf, p))
        }
    }
}

/// Aggregated results of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Arrivals inside the measurement window.
    pub arrivals: u64,
    /// Completed invocations.
    pub completed: u64,
    /// Invocations killed by VM evictions.
    pub eviction_failures: u64,
    /// Invocations rejected at placement.
    pub rejections: u64,
    /// Invocations permanently lost to faults.
    pub lost: u64,
    /// Cold starts over started invocations.
    pub cold_start_rate: f64,
    /// Eviction failures over arrivals.
    pub failure_rate: f64,
    /// Completions per second over the observed span.
    pub throughput_rps: f64,
    /// End-to-end latency distribution of completed invocations.
    pub latency: Option<Cdf>,
    /// Additive phase decomposition of the latency distribution
    /// (telemetry-enabled runs with the record sink; `None` otherwise).
    pub phases: Option<LatencyAttribution>,
}

impl RunMetrics {
    /// P-th percentile of end-to-end latency in seconds (`None` when
    /// nothing completed).
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        self.latency.as_ref().map(|c| c.percentile(p))
    }

    /// The paper's SLO metric: P99 latency in seconds.
    pub fn p99(&self) -> Option<f64> {
        self.latency_percentile(99.0)
    }

    /// True if this run met a P99 SLO of `slo_secs`.
    pub fn meets_slo(&self, slo_secs: f64) -> bool {
        match self.p99() {
            Some(p99) => p99 <= slo_secs,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        id: u64,
        arrival_s: u64,
        latency: f64,
        cold: bool,
        outcome: Outcome,
    ) -> InvocationRecord {
        InvocationRecord {
            id,
            arrival: SimTime::from_secs(arrival_s),
            finished: SimTime::from_secs(arrival_s) + SimDuration::from_secs_f64(latency),
            latency_secs: latency,
            exec_secs: latency * 0.8,
            cold,
            exec_started: outcome != Outcome::Rejected,
            outcome,
        }
    }

    #[test]
    fn aggregate_computes_rates() {
        let mut c = MetricsCollector::new();
        for i in 0..80 {
            c.push(rec(i, 10 + i, 1.0, i % 4 == 0, Outcome::Completed));
        }
        for i in 80..90 {
            c.push(rec(i, 10 + i, 0.0, true, Outcome::FailedEviction));
        }
        for i in 90..100 {
            c.push(rec(i, 10 + i, 0.0, false, Outcome::Rejected));
        }
        let m = c.aggregate(SimTime::ZERO);
        assert_eq!(m.arrivals, 100);
        assert_eq!(m.completed, 80);
        assert_eq!(m.eviction_failures, 10);
        assert_eq!(m.rejections, 10);
        assert!((m.failure_rate - 0.1).abs() < 1e-12);
        // Started = 80 completed + 10 failed; cold = 20 completed + 10 failed.
        assert!((m.cold_start_rate - 30.0 / 90.0).abs() < 1e-12);
        assert!(m.p99().is_some());
    }

    #[test]
    fn warmup_filters_early_arrivals() {
        let mut c = MetricsCollector::new();
        c.push(rec(0, 5, 1.0, true, Outcome::Completed));
        c.push(rec(1, 50, 1.0, false, Outcome::Completed));
        let m = c.aggregate(SimTime::from_secs(20));
        assert_eq!(m.arrivals, 1);
        assert!((m.cold_start_rate - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_collector_aggregates_safely() {
        let m = MetricsCollector::new().aggregate(SimTime::ZERO);
        assert_eq!(m.arrivals, 0);
        assert!(m.latency.is_none());
        assert!(!m.meets_slo(50.0));
        assert_eq!(m.throughput_rps, 0.0);
    }

    #[test]
    fn streaming_tier_matches_record_sink_counters() {
        let mut on = MetricsCollector::new();
        let mut off = MetricsCollector::streaming_only();
        for i in 0..200 {
            let outcome = match i % 10 {
                0 => Outcome::FailedEviction,
                1 => Outcome::Rejected,
                2 => Outcome::Censored,
                _ => Outcome::Completed,
            };
            let r = rec(i, i, 0.1 + (i % 17) as f64, i % 3 == 0, outcome);
            on.push(r);
            off.push(r);
        }
        assert!(off.records.is_empty());
        assert!(!on.records.is_empty());
        let exact = on.aggregate(SimTime::ZERO);
        for s in [&on.streaming, &off.streaming] {
            assert_eq!(s.finished, 200);
            assert_eq!(s.completed, exact.completed);
            assert_eq!(s.eviction_failures, exact.eviction_failures);
            assert_eq!(s.rejections, exact.rejections);
            assert!((s.cold_start_rate() - exact.cold_start_rate).abs() < 1e-12);
            assert!((s.failure_rate() - exact.failure_rate).abs() < 1e-12);
            assert!((s.throughput_rps() - exact.throughput_rps).abs() < 1e-12);
            // Histogram percentile within one bin width of the exact CDF.
            let p99 = s.latency_percentile(99.0).unwrap();
            let exact_p99 = exact.p99().unwrap();
            assert!(
                (p99 / exact_p99).ln().abs() <= 1.5 * s.latency_hist.bin_ratio().ln(),
                "{p99} vs {exact_p99}"
            );
        }
    }

    #[test]
    fn latency_percentile_fast_path_matches_aggregate() {
        let mut c = MetricsCollector::new();
        for i in 0..150 {
            c.push(rec(
                i,
                i,
                ((i * 31) % 150) as f64 + 0.5,
                false,
                Outcome::Completed,
            ));
        }
        c.push(rec(150, 150, 0.0, false, Outcome::Rejected));
        let m = c.aggregate(SimTime::from_secs(10));
        let mut buf = Vec::new();
        for p in [0.0, 50.0, 99.0, 100.0] {
            let fast = c
                .latency_percentile_with(SimTime::from_secs(10), p, &mut buf)
                .unwrap();
            assert!(
                (fast - m.latency_percentile(p).unwrap()).abs() < 1e-9,
                "p{p}"
            );
        }
        assert!(c
            .latency_percentile_with(SimTime::from_secs(10_000), 50.0, &mut buf)
            .is_none());
    }

    #[test]
    fn decimated_series_is_bounded_and_even() {
        let mut s = DecimatedSeries::new(8);
        for i in 0..10_000u64 {
            s.push(UtilizationSample {
                at: SimTime::from_secs(i),
                total_cpus: 16,
                cpus_in_use: i as f64,
            });
        }
        assert_eq!(s.seen(), 10_000);
        assert!(s.points().len() <= 8, "kept {}", s.points().len());
        assert!(s.points().len() >= 4);
        // Survivors are evenly strided multiples of a power of two.
        let stride = s.points()[1].at.since(s.points()[0].at);
        for w in s.points().windows(2) {
            assert_eq!(w[1].at.since(w[0].at), stride);
        }
        assert_eq!(s.points()[0].at, SimTime::ZERO);
    }

    #[test]
    fn utilization_sample_routing_respects_sink() {
        let sample = UtilizationSample {
            at: SimTime::from_secs(1),
            total_cpus: 8,
            cpus_in_use: 4.0,
        };
        let mut on = MetricsCollector::new();
        let mut off = MetricsCollector::streaming_only();
        on.push_sample(sample);
        off.push_sample(sample);
        assert_eq!(on.samples.len(), 1);
        assert!(off.samples.is_empty());
        assert_eq!(on.streaming.utilization.count(), 1);
        assert_eq!(off.streaming.utilization.count(), 1);
    }

    #[test]
    fn lost_outcome_counts_and_conserves() {
        let mut c = MetricsCollector::new();
        c.arrivals = 3;
        c.push(rec(0, 1, 1.0, false, Outcome::Completed));
        c.push(rec(1, 2, 0.0, false, Outcome::Lost));
        c.push(rec(2, 3, 0.0, false, Outcome::Censored));
        assert_eq!(c.lost, 1);
        assert_eq!(c.streaming.lost, 1);
        assert_eq!(c.aggregate(SimTime::ZERO).lost, 1);
        c.assert_conservation();
        c.arrivals = 4;
        let (arrivals, accounted) = c.conservation();
        assert_ne!(arrivals, accounted);
    }

    #[test]
    fn slo_check() {
        let mut c = MetricsCollector::new();
        for i in 0..100 {
            c.push(rec(
                i,
                i,
                if i >= 95 { 100.0 } else { 1.0 },
                false,
                Outcome::Completed,
            ));
        }
        let m = c.aggregate(SimTime::ZERO);
        assert!(!m.meets_slo(50.0));
        assert!(m.meets_slo(150.0));
    }
}
