//! Metrics collection and aggregation.
//!
//! The collector records one row per finished invocation plus optional
//! utilization samples; [`RunMetrics`] reduces them to the quantities the
//! paper reports — P99 latency, cold-start rate, failure rate, throughput.

use serde::{Deserialize, Serialize};

use hrv_trace::stats::Cdf;
use hrv_trace::time::{SimDuration, SimTime};

/// How one invocation's life ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Finished and reported back.
    Completed,
    /// Killed by a VM eviction while running, starting, or queued on the
    /// evicted invoker.
    FailedEviction,
    /// The controller could not place it within the placement timeout.
    Rejected,
    /// Still in flight when the measurement window closed (excluded from
    /// latency statistics).
    Censored,
}

/// One finished invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Invocation id from the trace.
    pub id: u64,
    /// Arrival time at the controller.
    pub arrival: SimTime,
    /// When the record was finalized (completion/failure/rejection).
    pub finished: SimTime,
    /// End-to-end latency in seconds (arrival → completion), only
    /// meaningful for `Completed`.
    pub latency_secs: f64,
    /// Pure execution duration in seconds (only for `Completed`).
    pub exec_secs: f64,
    /// Whether it cold-started (only meaningful once started).
    pub cold: bool,
    /// Whether execution had begun (false for work killed or rejected
    /// while still queued).
    pub exec_started: bool,
    /// Outcome.
    pub outcome: Outcome,
}

/// A point of the cluster utilization time series (Figure 20).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Sample time.
    pub at: SimTime,
    /// Total CPUs across live invokers.
    pub total_cpus: u32,
    /// Cores in use across live invokers.
    pub cpus_in_use: f64,
}

/// Streaming collector filled in by the platform world.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct MetricsCollector {
    /// Finished invocation rows.
    pub records: Vec<InvocationRecord>,
    /// Utilization time series.
    pub samples: Vec<UtilizationSample>,
    /// Total arrivals seen by the controller.
    pub arrivals: u64,
    /// Warm starts (execution began on an existing container).
    pub warm_starts: u64,
    /// Cold starts (execution required a new container).
    pub cold_starts: u64,
    /// Number of VM evictions that hit the platform.
    pub vm_evictions: u64,
    /// Invocations killed by evictions.
    pub eviction_failures: u64,
    /// Invocations rejected at placement.
    pub rejections: u64,
    /// Live migrations completed (invocations moved off warned VMs).
    pub migrations: u64,
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Records a finished invocation.
    pub fn push(&mut self, record: InvocationRecord) {
        match record.outcome {
            Outcome::FailedEviction => self.eviction_failures += 1,
            Outcome::Rejected => self.rejections += 1,
            Outcome::Completed | Outcome::Censored => {}
        }
        self.records.push(record);
    }

    /// Reduces the raw rows to aggregate metrics over `[warmup, end)`.
    /// Invocations arriving before `warmup` are discarded (ramp-up bias).
    pub fn aggregate(&self, warmup: SimTime) -> RunMetrics {
        let rows: Vec<&InvocationRecord> = self
            .records
            .iter()
            .filter(|r| r.arrival >= warmup)
            .collect();
        let completed: Vec<&&InvocationRecord> = rows
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .collect();
        let latencies: Vec<f64> = completed.iter().map(|r| r.latency_secs).collect();
        let latency = if latencies.is_empty() {
            None
        } else {
            Some(Cdf::from_samples(latencies))
        };
        let started = rows.iter().filter(|r| r.exec_started).count();
        let cold = rows.iter().filter(|r| r.cold && r.exec_started).count();
        let failures = rows
            .iter()
            .filter(|r| r.outcome == Outcome::FailedEviction)
            .count();
        let rejected = rows
            .iter()
            .filter(|r| r.outcome == Outcome::Rejected)
            .count();
        let span = rows
            .iter()
            .map(|r| r.finished)
            .max()
            .and_then(|max_t| {
                rows.iter()
                    .map(|r| r.arrival)
                    .min()
                    .map(|min_t| (min_t, max_t))
            })
            .map(|(a, b)| b.saturating_since(a))
            .unwrap_or(SimDuration::ZERO);
        RunMetrics {
            arrivals: rows.len() as u64,
            completed: completed.len() as u64,
            eviction_failures: failures as u64,
            rejections: rejected as u64,
            cold_start_rate: if started == 0 {
                0.0
            } else {
                cold as f64 / started as f64
            },
            failure_rate: if rows.is_empty() {
                0.0
            } else {
                failures as f64 / rows.len() as f64
            },
            throughput_rps: if span.is_zero() {
                0.0
            } else {
                completed.len() as f64 / span.as_secs_f64()
            },
            latency,
        }
    }
}

/// Aggregated results of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Arrivals inside the measurement window.
    pub arrivals: u64,
    /// Completed invocations.
    pub completed: u64,
    /// Invocations killed by VM evictions.
    pub eviction_failures: u64,
    /// Invocations rejected at placement.
    pub rejections: u64,
    /// Cold starts over started invocations.
    pub cold_start_rate: f64,
    /// Eviction failures over arrivals.
    pub failure_rate: f64,
    /// Completions per second over the observed span.
    pub throughput_rps: f64,
    /// End-to-end latency distribution of completed invocations.
    pub latency: Option<Cdf>,
}

impl RunMetrics {
    /// P-th percentile of end-to-end latency in seconds (`None` when
    /// nothing completed).
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        self.latency.as_ref().map(|c| c.percentile(p))
    }

    /// The paper's SLO metric: P99 latency in seconds.
    pub fn p99(&self) -> Option<f64> {
        self.latency_percentile(99.0)
    }

    /// True if this run met a P99 SLO of `slo_secs`.
    pub fn meets_slo(&self, slo_secs: f64) -> bool {
        match self.p99() {
            Some(p99) => p99 <= slo_secs,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        id: u64,
        arrival_s: u64,
        latency: f64,
        cold: bool,
        outcome: Outcome,
    ) -> InvocationRecord {
        InvocationRecord {
            id,
            arrival: SimTime::from_secs(arrival_s),
            finished: SimTime::from_secs(arrival_s) + SimDuration::from_secs_f64(latency),
            latency_secs: latency,
            exec_secs: latency * 0.8,
            cold,
            exec_started: outcome != Outcome::Rejected,
            outcome,
        }
    }

    #[test]
    fn aggregate_computes_rates() {
        let mut c = MetricsCollector::new();
        for i in 0..80 {
            c.push(rec(i, 10 + i, 1.0, i % 4 == 0, Outcome::Completed));
        }
        for i in 80..90 {
            c.push(rec(i, 10 + i, 0.0, true, Outcome::FailedEviction));
        }
        for i in 90..100 {
            c.push(rec(i, 10 + i, 0.0, false, Outcome::Rejected));
        }
        let m = c.aggregate(SimTime::ZERO);
        assert_eq!(m.arrivals, 100);
        assert_eq!(m.completed, 80);
        assert_eq!(m.eviction_failures, 10);
        assert_eq!(m.rejections, 10);
        assert!((m.failure_rate - 0.1).abs() < 1e-12);
        // Started = 80 completed + 10 failed; cold = 20 completed + 10 failed.
        assert!((m.cold_start_rate - 30.0 / 90.0).abs() < 1e-12);
        assert!(m.p99().is_some());
    }

    #[test]
    fn warmup_filters_early_arrivals() {
        let mut c = MetricsCollector::new();
        c.push(rec(0, 5, 1.0, true, Outcome::Completed));
        c.push(rec(1, 50, 1.0, false, Outcome::Completed));
        let m = c.aggregate(SimTime::from_secs(20));
        assert_eq!(m.arrivals, 1);
        assert!((m.cold_start_rate - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_collector_aggregates_safely() {
        let m = MetricsCollector::new().aggregate(SimTime::ZERO);
        assert_eq!(m.arrivals, 0);
        assert!(m.latency.is_none());
        assert!(!m.meets_slo(50.0));
        assert_eq!(m.throughput_rps, 0.0);
    }

    #[test]
    fn slo_check() {
        let mut c = MetricsCollector::new();
        for i in 0..100 {
            c.push(rec(
                i,
                i,
                if i >= 95 { 100.0 } else { 1.0 },
                false,
                Outcome::Completed,
            ));
        }
        let m = c.aggregate(SimTime::ZERO);
        assert!(!m.meets_slo(50.0));
        assert!(m.meets_slo(150.0));
    }
}
