//! Property-based tests of the load-balancing substrate invariants.

use proptest::prelude::*;

use hrv_lb::estimate::SampleHistogram;
use hrv_lb::hashring::HashRing;
use hrv_lb::mws::Mws;
use hrv_lb::policy::LoadBalancer;
use hrv_lb::view::{ClusterView, InvokerId, InvokerView, LoadWeights};
use hrv_trace::faas::{AppId, FunctionId};
use hrv_trace::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn f(app: u32) -> FunctionId {
    FunctionId {
        app: AppId(app),
        func: 0,
    }
}

proptest! {
    /// Consistent hashing monotonicity: removing one member only moves
    /// functions whose home *was* that member.
    #[test]
    fn ring_removal_is_monotone(
        members in prop::collection::btree_set(0u32..64, 2..20),
        victim_idx in 0usize..20,
        apps in prop::collection::vec(0u32..10_000, 1..100),
    ) {
        let members: Vec<u32> = members.into_iter().collect();
        let victim = members[victim_idx % members.len()];
        let mut ring = HashRing::new();
        for &m in &members {
            ring.add(InvokerId(m));
        }
        let before: Vec<InvokerId> =
            apps.iter().map(|&a| ring.home(f(a)).unwrap()).collect();
        ring.remove(InvokerId(victim));
        for (&app, &was) in apps.iter().zip(&before) {
            let now = ring.home(f(app)).unwrap();
            if was != InvokerId(victim) {
                prop_assert_eq!(now, was, "app {} moved without cause", app);
            } else {
                prop_assert_ne!(now, InvokerId(victim));
            }
        }
    }

    /// Ring walks enumerate each member exactly once, starting at the home.
    #[test]
    fn ring_walk_is_a_permutation(
        members in prop::collection::btree_set(0u32..256, 1..30),
        app in 0u32..10_000,
    ) {
        let mut ring = HashRing::new();
        for &m in &members {
            ring.add(InvokerId(m));
        }
        let walk: Vec<InvokerId> = ring.walk(f(app)).collect();
        prop_assert_eq!(walk.len(), members.len());
        prop_assert_eq!(walk[0], ring.home(f(app)).unwrap());
        let mut seen: Vec<u32> = walk.iter().map(|i| i.0).collect();
        seen.sort_unstable();
        let expect: Vec<u32> = members.into_iter().collect();
        prop_assert_eq!(seen, expect);
    }

    /// Histogram percentiles are monotone in `p` and bracket the sample
    /// range (within one bin of slack).
    #[test]
    fn histogram_percentiles_are_monotone(
        samples in prop::collection::vec(0.001f64..3_000.0, 1..300),
    ) {
        let mut h = SampleHistogram::for_durations();
        for &x in &samples {
            h.record(x);
        }
        let ps = [1.0, 25.0, 50.0, 75.0, 99.0, 100.0];
        let values: Vec<f64> = ps.iter().map(|&p| h.percentile(p).unwrap()).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9, "percentiles not monotone: {:?}", values);
        }
        // The mean is exact regardless of binning.
        let exact = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean().unwrap() - exact).abs() < 1e-9);
    }

    /// The weighted-load metric is bounded by the weight sum and ordered
    /// by CPU utilization when memory is equal.
    #[test]
    fn weighted_load_is_bounded_and_ordered(
        cpus in 1u32..64,
        in_use_a in 0.0f64..64.0,
        in_use_b in 0.0f64..64.0,
    ) {
        let w = LoadWeights::default();
        let mk = |in_use: f64| {
            let mut v = InvokerView::register(InvokerId(0), cpus, 1_024, SimTime::ZERO);
            v.cpu_in_use = in_use;
            v
        };
        let a = mk(in_use_a);
        let b = mk(in_use_b);
        prop_assert!(a.weighted_load(w) <= w.cpu + w.mem + 1e-12);
        prop_assert!(a.weighted_load(w) >= 0.0);
        if a.cpu_utilization() < b.cpu_utilization() {
            prop_assert!(a.weighted_load(w) <= b.weighted_load(w));
        }
    }

    /// ClusterView stays sorted and consistent under arbitrary add/remove
    /// sequences.
    #[test]
    fn cluster_view_crud_invariants(ops in prop::collection::vec((0u32..32, any::<bool>()), 1..100)) {
        let mut view = ClusterView::new();
        let mut model: std::collections::BTreeSet<u32> = Default::default();
        for (id, add) in ops {
            if add {
                if model.insert(id) {
                    view.add(InvokerView::register(InvokerId(id), 4, 1_024, SimTime::ZERO));
                }
            } else if model.remove(&id) {
                prop_assert!(view.remove(InvokerId(id)).is_some());
            } else {
                prop_assert!(view.remove(InvokerId(id)).is_none());
            }
            let ids: Vec<u32> = view.all().iter().map(|v| v.id.0).collect();
            let expect: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(ids, expect);
        }
    }
}

/// One step of the MWS differential-cache model.
#[derive(Debug, Clone)]
enum MwsOp {
    /// Advance simulated time by the given number of milliseconds (large
    /// values cross the 30 s shrink-damping window).
    Advance(u64),
    /// Record an arrival + completion observation for an app, feeding the
    /// usage estimator of both balancers identically.
    Observe { app: u32, dur_ms: u64, cpu: u8 },
    /// An invoker joins the cluster (ring + view).
    Join(u32),
    /// An invoker leaves the cluster.
    Leave(u32),
    /// Toggle `eviction_pending` — a placeability flip without churn.
    Flip(u32),
    /// Load-only drift through `ClusterView::update`: epochs stay put, so
    /// the cached prefix stays valid and the live capacity-band check has
    /// to track the moving covering boundary.
    LoadDelta { id: u32, tenths: i8 },
    /// Place an invocation of the app through both paths and compare.
    Place(u32),
}

fn mws_op_strategy() -> impl Strategy<Value = MwsOp> {
    prop_oneof![
        1 => (1u64..40_000).prop_map(MwsOp::Advance),
        2 => (0u32..6, 100u64..8_000, 1u8..4)
            .prop_map(|(app, dur_ms, cpu)| MwsOp::Observe { app, dur_ms, cpu }),
        1 => (0u32..12).prop_map(MwsOp::Join),
        1 => (0u32..12).prop_map(MwsOp::Leave),
        1 => (0u32..12).prop_map(MwsOp::Flip),
        3 => (0u32..12, -30i8..30).prop_map(|(id, tenths)| MwsOp::LoadDelta { id, tenths }),
        8 => (0u32..6).prop_map(MwsOp::Place),
    ]
}

proptest! {
    /// Differential test of the covering-set cache: a cached balancer and
    /// an uncached reference consume one interleaved stream of joins,
    /// leaves, placeability flips, load drift, and placements. Every
    /// placement must agree exactly — choice and worker-set size — and
    /// the cache counters must account for every cached placement.
    #[test]
    fn mws_cached_placements_match_uncached_reference(
        ops in prop::collection::vec(mws_op_strategy(), 1..250),
    ) {
        let mut cached = Mws::new(LoadWeights::default(), 1);
        let mut reference = Mws::new(LoadWeights::default(), 1);
        let mut view = ClusterView::new();
        let mut present: std::collections::BTreeSet<u32> = Default::default();
        let mut now = SimTime::ZERO;
        let mut rng = StdRng::seed_from_u64(7);
        let mut places = 0u64;
        // Seed a small cluster so early placements have somewhere to go.
        for id in 0..4u32 {
            present.insert(id);
            cached.on_invoker_join(InvokerId(id));
            reference.on_invoker_join(InvokerId(id));
            view.add(InvokerView::register(InvokerId(id), 8, 16 * 1024, now));
        }
        for op in ops {
            match op {
                MwsOp::Advance(ms) => now += SimDuration::from_millis(ms),
                MwsOp::Observe { app, dur_ms, cpu } => {
                    let d = SimDuration::from_millis(dur_ms);
                    cached.on_arrival(f(app), now);
                    reference.on_arrival(f(app), now);
                    cached.on_completion(f(app), d, f64::from(cpu));
                    reference.on_completion(f(app), d, f64::from(cpu));
                }
                MwsOp::Join(id) => {
                    if present.insert(id) {
                        cached.on_invoker_join(InvokerId(id));
                        reference.on_invoker_join(InvokerId(id));
                        view.add(InvokerView::register(InvokerId(id), 8, 16 * 1024, now));
                    }
                }
                MwsOp::Leave(id) => {
                    if present.remove(&id) {
                        cached.on_invoker_leave(InvokerId(id));
                        reference.on_invoker_leave(InvokerId(id));
                        prop_assert!(view.remove(InvokerId(id)).is_some());
                    }
                }
                MwsOp::Flip(id) => {
                    if present.contains(&id) {
                        view.update(InvokerId(id), |v| {
                            v.eviction_pending = !v.eviction_pending;
                        });
                    }
                }
                MwsOp::LoadDelta { id, tenths } => {
                    if present.contains(&id) {
                        view.update(InvokerId(id), |v| {
                            let cap = f64::from(v.total_cpus);
                            v.cpu_in_use =
                                (v.cpu_in_use + f64::from(tenths) / 10.0).clamp(0.0, cap);
                        });
                    }
                }
                MwsOp::Place(app) => {
                    places += 1;
                    let a = cached.place(now, f(app), 256, &view, &mut rng);
                    let b = reference.place_uncached(now, f(app), 256, &view);
                    prop_assert_eq!(a, b, "placement diverged for app {}", app);
                    prop_assert_eq!(
                        cached.worker_set_size(f(app)),
                        reference.worker_set_size(f(app)),
                        "worker-set size diverged for app {}", app
                    );
                }
            }
        }
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.hits + stats.misses, places);
    }
}

proptest! {
    /// Ownership-map invariants for the partitioned placement path: the
    /// map is a total, deterministic function of the replica count alone
    /// — every function is owned by exactly one replica, two evaluations
    /// agree, and ring membership churn (any number of joins/leaves, any
    /// epoch) never moves ownership.
    #[test]
    fn ownership_is_total_deterministic_and_churn_stable(
        replicas in 1u32..16,
        apps in prop::collection::vec(0u32..50_000, 1..120),
        churn in prop::collection::vec((0u32..64, 0u8..2), 0..40),
    ) {
        let mut ring = HashRing::new();
        for id in 0..8u32 {
            ring.add(InvokerId(id));
        }
        let epoch_before = ring.epoch();
        let owners: Vec<u32> = apps
            .iter()
            .map(|&a| hrv_lb::owner_of(replicas, f(a)))
            .collect();
        for (&app, &owner) in apps.iter().zip(&owners) {
            // Total: exactly one owner, in range.
            prop_assert!(owner < replicas, "app {} owner {}", app, owner);
            // Deterministic: re-evaluation agrees.
            prop_assert_eq!(owner, hrv_lb::owner_of(replicas, f(app)));
            // The owner's arc — and only the owner's arc — contains the
            // function's walk-start hash.
            let covering: Vec<u32> = (0..replicas)
                .filter(|&r| {
                    hrv_lb::owned_arc(replicas, r)
                        .contains(HashRing::function_hash(f(app)))
                })
                .collect();
            prop_assert_eq!(covering, vec![owner]);
        }
        // Churn the ring arbitrarily: ownership never reads membership,
        // so it is stable under join/leave at *every* epoch, bumped or
        // not.
        for (id, join) in churn {
            if join == 1 && !ring.contains(InvokerId(id)) {
                ring.add(InvokerId(id));
            } else if join == 0 {
                ring.remove(InvokerId(id));
            }
        }
        prop_assert!(ring.epoch() >= epoch_before);
        for (&app, &owner) in apps.iter().zip(&owners) {
            prop_assert_eq!(owner, hrv_lb::owner_of(replicas, f(app)));
        }
    }
}
