//! The controller's view of the invoker fleet.
//!
//! Load-balancing decisions are made against this view, which is fed by
//! the (simulated) health pings invokers send every second — so it can be
//! up to a ping interval stale, exactly like the modified OpenWhisk
//! controller in Section 6.2.

use serde::{Deserialize, Serialize};

use hrv_trace::time::SimTime;

/// Identifies an invoker (one per VM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InvokerId(pub u32);

/// Weights for the CPU/memory utilization mix used as the load metric.
/// The paper requires `w_cpu > w_mem` "to reflect the scarcity of
/// allocated CPUs" (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadWeights {
    /// Weight on CPU utilization.
    pub cpu: f64,
    /// Weight on memory utilization.
    pub mem: f64,
}

impl Default for LoadWeights {
    fn default() -> Self {
        LoadWeights { cpu: 0.8, mem: 0.2 }
    }
}

/// One invoker's last-reported state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvokerView {
    /// Invoker id.
    pub id: InvokerId,
    /// CPUs currently allocated to the hosting (Harvest) VM.
    pub total_cpus: u32,
    /// Cores in use (running invocations), as last reported.
    pub cpu_in_use: f64,
    /// Total memory of the VM in MiB.
    pub memory_mb: u64,
    /// Memory held by containers (warm + running) in MiB.
    pub memory_used_mb: u64,
    /// Memory committed to in-flight placements the invoker has not yet
    /// acknowledged, in MiB (controller-side bookkeeping).
    pub memory_pending_mb: u64,
    /// Invocations placed on this invoker that have not completed.
    pub inflight: u32,
    /// Sum of expected remaining demand of in-flight invocations, in
    /// CPU-seconds (for the weighted-queue-length JSQ variant).
    pub inflight_demand_secs: f64,
    /// True once the VM received its 30-second eviction warning; the
    /// controller must stop placing work here.
    pub eviction_pending: bool,
    /// False when health pings stopped arriving (crashed/evicted VM).
    pub healthy: bool,
    /// True while recovery's health-probe machinery has sidelined this
    /// invoker (silent past the probe timeout, or a persistent
    /// straggler); quarantined invokers take no new placements but stay
    /// registered until declared down.
    pub quarantined: bool,
    /// When the last health ping arrived.
    pub last_ping: SimTime,
}

impl InvokerView {
    /// A fresh view for a just-registered invoker.
    pub fn register(id: InvokerId, total_cpus: u32, memory_mb: u64, now: SimTime) -> Self {
        InvokerView {
            id,
            total_cpus,
            cpu_in_use: 0.0,
            memory_mb,
            memory_used_mb: 0,
            memory_pending_mb: 0,
            inflight: 0,
            inflight_demand_secs: 0.0,
            eviction_pending: false,
            healthy: true,
            quarantined: false,
            last_ping: now,
        }
    }

    /// CPU utilization in `[0, 1]`; an invoker whose VM shrank to zero
    /// cores while running work reports 1.0 (fully saturated).
    pub fn cpu_utilization(&self) -> f64 {
        if self.total_cpus == 0 {
            if self.inflight == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            (self.cpu_in_use / f64::from(self.total_cpus)).clamp(0.0, 1.0)
        }
    }

    /// Memory utilization in `[0, 1]`, counting pending placements.
    pub fn memory_utilization(&self) -> f64 {
        if self.memory_mb == 0 {
            return 1.0;
        }
        ((self.memory_used_mb + self.memory_pending_mb) as f64 / self.memory_mb as f64)
            .clamp(0.0, 1.0)
    }

    /// The paper's load metric: `w_c · cpu_util + w_m · mem_util`.
    pub fn weighted_load(&self, w: LoadWeights) -> f64 {
        w.cpu * self.cpu_utilization() + w.mem * self.memory_utilization()
    }

    /// Free memory available for new containers, MiB.
    pub fn memory_free_mb(&self) -> u64 {
        self.memory_mb
            .saturating_sub(self.memory_used_mb)
            .saturating_sub(self.memory_pending_mb)
    }

    /// Cores not currently in use — the `usable_resources` term of the MWS
    /// worker-set growth loop (Algorithm 1).
    pub fn usable_cpus(&self) -> f64 {
        (f64::from(self.total_cpus) - self.cpu_in_use).max(0.0)
    }

    /// True if the controller may place new work here.
    pub fn placeable(&self) -> bool {
        self.healthy && !self.eviction_pending && !self.quarantined
    }
}

/// The whole fleet as the controller sees it, ordered by invoker id.
///
/// Placement runs once per arrival, so the view maintains an index of
/// placeable invokers incrementally: mutations routed through
/// [`ClusterView::update`] patch the index in O(log n) (placeability flips
/// are rare — load bookkeeping never touches it), and [`ClusterView::placeable`]
/// iterates the index instead of re-filtering the whole fleet. Raw
/// [`ClusterView::get_mut`] access is still available for tests and
/// one-off tweaks; it conservatively marks the index dirty and iteration
/// falls back to a scan until the next `update` rebuilds it.
#[derive(Debug, Clone, Default)]
pub struct ClusterView {
    invokers: Vec<InvokerView>,
    /// Indices into `invokers` of placeable members, ascending (= id
    /// order). Trustworthy only while `dirty` is false.
    placeable_pos: Vec<u32>,
    /// Set when a `get_mut` may have flipped placeability behind the
    /// index's back.
    dirty: bool,
    /// Bumped whenever the *set* of placeable invokers may have changed:
    /// add/remove, an `update` that flips `placeable()`, and (conservatively)
    /// every `get_mut`. Load-only `update`s never bump it, so the epoch is
    /// stable across steady-state bookkeeping — callers cache
    /// placeability-dependent results keyed on it (the MWS covering-set
    /// cache). Deterministic: it counts mutation events, not wall time.
    placeability_epoch: u64,
}

impl ClusterView {
    /// Creates an empty view.
    pub fn new() -> Self {
        ClusterView::default()
    }

    /// Registers a new invoker.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered.
    pub fn add(&mut self, view: InvokerView) {
        let pos = self.invokers.partition_point(|v| v.id < view.id);
        assert!(
            self.invokers.get(pos).map(|v| v.id) != Some(view.id),
            "invoker {:?} already registered",
            view.id
        );
        let placeable = view.placeable();
        self.placeability_epoch += 1;
        self.invokers.insert(pos, view);
        if !self.dirty {
            let p = self.placeable_pos.partition_point(|&x| (x as usize) < pos);
            for x in &mut self.placeable_pos[p..] {
                *x += 1;
            }
            if placeable {
                self.placeable_pos.insert(p, pos as u32);
            }
        }
    }

    /// Removes an invoker (VM evicted/crashed). Returns its last view.
    pub fn remove(&mut self, id: InvokerId) -> Option<InvokerView> {
        let pos = self.invokers.iter().position(|v| v.id == id)?;
        self.placeability_epoch += 1;
        let removed = self.invokers.remove(pos);
        if !self.dirty {
            let p = self.placeable_pos.partition_point(|&x| (x as usize) < pos);
            if self.placeable_pos.get(p) == Some(&(pos as u32)) {
                self.placeable_pos.remove(p);
            }
            for x in &mut self.placeable_pos[p..] {
                *x -= 1;
            }
        }
        Some(removed)
    }

    /// Immutable lookup.
    pub fn get(&self, id: InvokerId) -> Option<&InvokerView> {
        self.invokers
            .binary_search_by_key(&id, |v| v.id)
            .ok()
            .map(|i| &self.invokers[i])
    }

    /// Like [`ClusterView::get`], but also returns the invoker's position
    /// in [`ClusterView::all`]. Positions are stable across any span with
    /// no placeability-epoch bump: only `add`/`remove` reorder the slice,
    /// and both bump the epoch (as does the conservative `get_mut`), so
    /// epoch-validated caches may index directly instead of re-searching.
    pub fn get_indexed(&self, id: InvokerId) -> Option<(usize, &InvokerView)> {
        self.invokers
            .binary_search_by_key(&id, |v| v.id)
            .ok()
            .map(|i| (i, &self.invokers[i]))
    }

    /// Mutable lookup. Marks the placeable index dirty and conservatively
    /// bumps the placeability epoch (the caller may flip placeability);
    /// hot paths should use [`ClusterView::update`], which keeps the
    /// index intact and only bumps the epoch on an actual flip.
    pub fn get_mut(&mut self, id: InvokerId) -> Option<&mut InvokerView> {
        self.invokers
            .binary_search_by_key(&id, |v| v.id)
            .ok()
            .map(move |i| {
                self.dirty = true;
                self.placeability_epoch += 1;
                &mut self.invokers[i]
            })
    }

    /// Mutates one invoker through a closure, patching the placeable
    /// index when the mutation flips placeability. Returns false when the
    /// id is unknown. Rebuilds the index first if a prior `get_mut` left
    /// it dirty.
    pub fn update(&mut self, id: InvokerId, f: impl FnOnce(&mut InvokerView)) -> bool {
        let Ok(i) = self.invokers.binary_search_by_key(&id, |v| v.id) else {
            return false;
        };
        if self.dirty {
            self.rebuild_index();
        }
        let was = self.invokers[i].placeable();
        f(&mut self.invokers[i]);
        let now = self.invokers[i].placeable();
        if was != now {
            self.placeability_epoch += 1;
            let p = self.placeable_pos.partition_point(|&x| (x as usize) < i);
            if now {
                self.placeable_pos.insert(p, i as u32);
            } else {
                debug_assert_eq!(self.placeable_pos.get(p), Some(&(i as u32)));
                self.placeable_pos.remove(p);
            }
        }
        true
    }

    fn rebuild_index(&mut self) {
        self.placeable_pos.clear();
        self.placeable_pos.extend(
            self.invokers
                .iter()
                .enumerate()
                .filter(|(_, v)| v.placeable())
                .map(|(i, _)| i as u32),
        );
        self.dirty = false;
    }

    /// Monotone counter over mutations that may have changed which
    /// invokers are placeable. Two calls returning the same value bracket
    /// a window in which the placeable *set* (not its load) was stable.
    pub fn placeability_epoch(&self) -> u64 {
        self.placeability_epoch
    }

    /// All invokers, ordered by id.
    pub fn all(&self) -> &[InvokerView] {
        &self.invokers
    }

    /// Positions of placeable invokers in [`ClusterView::all`], ascending,
    /// or `None` while the index is dirty. Lets samplers index placeable
    /// members directly without collecting them.
    pub fn placeable_positions(&self) -> Option<&[u32]> {
        (!self.dirty).then_some(self.placeable_pos.as_slice())
    }

    /// Invokers accepting new placements, ordered by id.
    pub fn placeable(&self) -> Placeable<'_> {
        Placeable {
            invokers: &self.invokers,
            mode: if self.dirty {
                PlaceableMode::Scan(self.invokers.iter())
            } else {
                PlaceableMode::Indexed(self.placeable_pos.iter())
            },
        }
    }

    /// Number of registered invokers.
    pub fn len(&self) -> usize {
        self.invokers.len()
    }

    /// True when no invokers are registered.
    pub fn is_empty(&self) -> bool {
        self.invokers.is_empty()
    }

    /// Total CPUs across placeable invokers.
    pub fn total_cpus(&self) -> u32 {
        self.placeable().map(|v| v.total_cpus).sum()
    }
}

/// Iterator returned by [`ClusterView::placeable`]: walks the maintained
/// index when it is clean, falls back to a filtering scan when dirty.
/// Either way the yield order is ascending invoker id.
#[derive(Debug)]
pub struct Placeable<'a> {
    invokers: &'a [InvokerView],
    mode: PlaceableMode<'a>,
}

#[derive(Debug)]
enum PlaceableMode<'a> {
    Indexed(std::slice::Iter<'a, u32>),
    Scan(std::slice::Iter<'a, InvokerView>),
}

impl<'a> Iterator for Placeable<'a> {
    type Item = &'a InvokerView;

    fn next(&mut self) -> Option<&'a InvokerView> {
        match &mut self.mode {
            PlaceableMode::Indexed(it) => it.next().map(|&p| &self.invokers[p as usize]),
            PlaceableMode::Scan(it) => it.find(|v| v.placeable()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32, cpus: u32, in_use: f64) -> InvokerView {
        let mut view = InvokerView::register(InvokerId(id), cpus, 1024, SimTime::ZERO);
        view.cpu_in_use = in_use;
        view
    }

    #[test]
    fn utilization_clamps_and_handles_zero_cpus() {
        let mut view = v(0, 4, 2.0);
        assert!((view.cpu_utilization() - 0.5).abs() < 1e-12);
        view.cpu_in_use = 10.0;
        assert_eq!(view.cpu_utilization(), 1.0);
        view.total_cpus = 0;
        view.inflight = 1;
        assert_eq!(view.cpu_utilization(), 1.0);
        view.inflight = 0;
        assert_eq!(view.cpu_utilization(), 0.0);
    }

    #[test]
    fn weighted_load_prefers_cpu() {
        let mut view = v(0, 4, 4.0); // cpu full
        view.memory_used_mb = 0;
        let w = LoadWeights::default();
        let cpu_bound = view.weighted_load(w);
        view.cpu_in_use = 0.0;
        view.memory_used_mb = 1024; // mem full
        let mem_bound = view.weighted_load(w);
        assert!(cpu_bound > mem_bound);
    }

    #[test]
    fn memory_accounting_includes_pending() {
        let mut view = v(0, 4, 0.0);
        view.memory_used_mb = 512;
        view.memory_pending_mb = 256;
        assert_eq!(view.memory_free_mb(), 256);
        assert!((view.memory_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn placeable_excludes_warned_and_unhealthy() {
        let mut view = v(0, 4, 0.0);
        assert!(view.placeable());
        view.eviction_pending = true;
        assert!(!view.placeable());
        view.eviction_pending = false;
        view.healthy = false;
        assert!(!view.placeable());
        view.healthy = true;
        view.quarantined = true;
        assert!(!view.placeable());
    }

    #[test]
    fn cluster_view_crud_stays_sorted() {
        let mut cv = ClusterView::new();
        cv.add(v(5, 4, 0.0));
        cv.add(v(1, 4, 0.0));
        cv.add(v(3, 4, 0.0));
        let ids: Vec<u32> = cv.all().iter().map(|x| x.id.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert!(cv.get(InvokerId(3)).is_some());
        cv.remove(InvokerId(3)).unwrap();
        assert!(cv.get(InvokerId(3)).is_none());
        assert_eq!(cv.len(), 2);
        cv.get_mut(InvokerId(5)).unwrap().cpu_in_use = 2.0;
        assert_eq!(cv.get(InvokerId(5)).unwrap().cpu_in_use, 2.0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut cv = ClusterView::new();
        cv.add(v(1, 4, 0.0));
        cv.add(v(1, 4, 0.0));
    }

    #[test]
    fn placeable_iterator_filters() {
        let mut cv = ClusterView::new();
        cv.add(v(0, 4, 0.0));
        let mut warned = v(1, 4, 0.0);
        warned.eviction_pending = true;
        cv.add(warned);
        assert_eq!(cv.placeable().count(), 1);
        assert_eq!(cv.total_cpus(), 4);
    }

    #[test]
    fn update_maintains_placeable_index() {
        let mut cv = ClusterView::new();
        for i in 0..4 {
            cv.add(v(i, 4, 0.0));
        }
        assert_eq!(cv.placeable_positions(), Some(&[0u32, 1, 2, 3][..]));
        // Placeability flip patches the index.
        assert!(cv.update(InvokerId(1), |x| x.eviction_pending = true));
        assert_eq!(cv.placeable_positions(), Some(&[0u32, 2, 3][..]));
        // Load-only mutation leaves it untouched.
        assert!(cv.update(InvokerId(2), |x| x.cpu_in_use = 3.0));
        assert_eq!(cv.placeable_positions(), Some(&[0u32, 2, 3][..]));
        // Flip back.
        assert!(cv.update(InvokerId(1), |x| x.eviction_pending = false));
        assert_eq!(cv.placeable_positions(), Some(&[0u32, 1, 2, 3][..]));
        // Unknown ids are a no-op.
        assert!(!cv.update(InvokerId(9), |x| x.healthy = false));
    }

    #[test]
    fn add_and_remove_keep_index_consistent() {
        let mut cv = ClusterView::new();
        cv.add(v(1, 4, 0.0));
        cv.add(v(5, 4, 0.0));
        let mut quarantined = v(3, 4, 0.0);
        quarantined.quarantined = true;
        cv.add(quarantined);
        // Positions are indices: invoker 3 (position 1) is unplaceable.
        assert_eq!(cv.placeable_positions(), Some(&[0u32, 2][..]));
        cv.remove(InvokerId(1)).unwrap();
        assert_eq!(cv.placeable_positions(), Some(&[1u32][..]));
        cv.remove(InvokerId(3)).unwrap();
        assert_eq!(cv.placeable_positions(), Some(&[0u32][..]));
        let ids: Vec<u32> = cv.placeable().map(|x| x.id.0).collect();
        assert_eq!(ids, vec![5]);
    }

    #[test]
    fn placeability_epoch_tracks_set_changes_only() {
        let mut cv = ClusterView::new();
        cv.add(v(0, 4, 0.0));
        cv.add(v(1, 4, 0.0));
        let e0 = cv.placeability_epoch();
        // Load-only updates leave the epoch alone.
        assert!(cv.update(InvokerId(0), |x| x.cpu_in_use = 3.0));
        assert!(cv.update(InvokerId(1), |x| x.inflight = 7));
        assert_eq!(cv.placeability_epoch(), e0);
        // A placeability flip bumps it.
        assert!(cv.update(InvokerId(1), |x| x.eviction_pending = true));
        assert!(cv.placeability_epoch() > e0);
        let e1 = cv.placeability_epoch();
        // get_mut bumps conservatively even without a flip.
        cv.get_mut(InvokerId(0)).unwrap().cpu_in_use = 1.0;
        assert!(cv.placeability_epoch() > e1);
        let e2 = cv.placeability_epoch();
        // Membership changes bump.
        cv.add(v(2, 4, 0.0));
        assert!(cv.placeability_epoch() > e2);
        let e3 = cv.placeability_epoch();
        cv.remove(InvokerId(2)).unwrap();
        assert!(cv.placeability_epoch() > e3);
        // Removing an unknown id is not a change.
        let e4 = cv.placeability_epoch();
        assert!(cv.remove(InvokerId(9)).is_none());
        assert_eq!(cv.placeability_epoch(), e4);
    }

    #[test]
    fn get_mut_dirties_index_and_update_rebuilds() {
        let mut cv = ClusterView::new();
        for i in 0..3 {
            cv.add(v(i, 4, 0.0));
        }
        cv.get_mut(InvokerId(0)).unwrap().healthy = false;
        // Dirty: no positions, but iteration still filters correctly.
        assert!(cv.placeable_positions().is_none());
        let ids: Vec<u32> = cv.placeable().map(|x| x.id.0).collect();
        assert_eq!(ids, vec![1, 2]);
        // Any update() rebuilds and resumes incremental maintenance.
        assert!(cv.update(InvokerId(2), |x| x.quarantined = true));
        assert_eq!(cv.placeable_positions(), Some(&[1u32][..]));
    }
}
