//! The controller's view of the invoker fleet.
//!
//! Load-balancing decisions are made against this view, which is fed by
//! the (simulated) health pings invokers send every second — so it can be
//! up to a ping interval stale, exactly like the modified OpenWhisk
//! controller in Section 6.2.

use serde::{Deserialize, Serialize};

use hrv_trace::time::SimTime;

/// Identifies an invoker (one per VM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InvokerId(pub u32);

/// Weights for the CPU/memory utilization mix used as the load metric.
/// The paper requires `w_cpu > w_mem` "to reflect the scarcity of
/// allocated CPUs" (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadWeights {
    /// Weight on CPU utilization.
    pub cpu: f64,
    /// Weight on memory utilization.
    pub mem: f64,
}

impl Default for LoadWeights {
    fn default() -> Self {
        LoadWeights { cpu: 0.8, mem: 0.2 }
    }
}

/// One invoker's last-reported state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvokerView {
    /// Invoker id.
    pub id: InvokerId,
    /// CPUs currently allocated to the hosting (Harvest) VM.
    pub total_cpus: u32,
    /// Cores in use (running invocations), as last reported.
    pub cpu_in_use: f64,
    /// Total memory of the VM in MiB.
    pub memory_mb: u64,
    /// Memory held by containers (warm + running) in MiB.
    pub memory_used_mb: u64,
    /// Memory committed to in-flight placements the invoker has not yet
    /// acknowledged, in MiB (controller-side bookkeeping).
    pub memory_pending_mb: u64,
    /// Invocations placed on this invoker that have not completed.
    pub inflight: u32,
    /// Sum of expected remaining demand of in-flight invocations, in
    /// CPU-seconds (for the weighted-queue-length JSQ variant).
    pub inflight_demand_secs: f64,
    /// True once the VM received its 30-second eviction warning; the
    /// controller must stop placing work here.
    pub eviction_pending: bool,
    /// False when health pings stopped arriving (crashed/evicted VM).
    pub healthy: bool,
    /// True while recovery's health-probe machinery has sidelined this
    /// invoker (silent past the probe timeout, or a persistent
    /// straggler); quarantined invokers take no new placements but stay
    /// registered until declared down.
    pub quarantined: bool,
    /// When the last health ping arrived.
    pub last_ping: SimTime,
}

impl InvokerView {
    /// A fresh view for a just-registered invoker.
    pub fn register(id: InvokerId, total_cpus: u32, memory_mb: u64, now: SimTime) -> Self {
        InvokerView {
            id,
            total_cpus,
            cpu_in_use: 0.0,
            memory_mb,
            memory_used_mb: 0,
            memory_pending_mb: 0,
            inflight: 0,
            inflight_demand_secs: 0.0,
            eviction_pending: false,
            healthy: true,
            quarantined: false,
            last_ping: now,
        }
    }

    /// CPU utilization in `[0, 1]`; an invoker whose VM shrank to zero
    /// cores while running work reports 1.0 (fully saturated).
    pub fn cpu_utilization(&self) -> f64 {
        if self.total_cpus == 0 {
            if self.inflight == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            (self.cpu_in_use / f64::from(self.total_cpus)).clamp(0.0, 1.0)
        }
    }

    /// Memory utilization in `[0, 1]`, counting pending placements.
    pub fn memory_utilization(&self) -> f64 {
        if self.memory_mb == 0 {
            return 1.0;
        }
        ((self.memory_used_mb + self.memory_pending_mb) as f64 / self.memory_mb as f64)
            .clamp(0.0, 1.0)
    }

    /// The paper's load metric: `w_c · cpu_util + w_m · mem_util`.
    pub fn weighted_load(&self, w: LoadWeights) -> f64 {
        w.cpu * self.cpu_utilization() + w.mem * self.memory_utilization()
    }

    /// Free memory available for new containers, MiB.
    pub fn memory_free_mb(&self) -> u64 {
        self.memory_mb
            .saturating_sub(self.memory_used_mb)
            .saturating_sub(self.memory_pending_mb)
    }

    /// Cores not currently in use — the `usable_resources` term of the MWS
    /// worker-set growth loop (Algorithm 1).
    pub fn usable_cpus(&self) -> f64 {
        (f64::from(self.total_cpus) - self.cpu_in_use).max(0.0)
    }

    /// True if the controller may place new work here.
    pub fn placeable(&self) -> bool {
        self.healthy && !self.eviction_pending && !self.quarantined
    }
}

/// The whole fleet as the controller sees it, ordered by invoker id.
#[derive(Debug, Clone, Default)]
pub struct ClusterView {
    invokers: Vec<InvokerView>,
}

impl ClusterView {
    /// Creates an empty view.
    pub fn new() -> Self {
        ClusterView::default()
    }

    /// Registers a new invoker.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered.
    pub fn add(&mut self, view: InvokerView) {
        let pos = self.invokers.partition_point(|v| v.id < view.id);
        assert!(
            self.invokers.get(pos).map(|v| v.id) != Some(view.id),
            "invoker {:?} already registered",
            view.id
        );
        self.invokers.insert(pos, view);
    }

    /// Removes an invoker (VM evicted/crashed). Returns its last view.
    pub fn remove(&mut self, id: InvokerId) -> Option<InvokerView> {
        let pos = self.invokers.iter().position(|v| v.id == id)?;
        Some(self.invokers.remove(pos))
    }

    /// Immutable lookup.
    pub fn get(&self, id: InvokerId) -> Option<&InvokerView> {
        self.invokers
            .binary_search_by_key(&id, |v| v.id)
            .ok()
            .map(|i| &self.invokers[i])
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: InvokerId) -> Option<&mut InvokerView> {
        self.invokers
            .binary_search_by_key(&id, |v| v.id)
            .ok()
            .map(move |i| &mut self.invokers[i])
    }

    /// All invokers, ordered by id.
    pub fn all(&self) -> &[InvokerView] {
        &self.invokers
    }

    /// Invokers accepting new placements, ordered by id.
    pub fn placeable(&self) -> impl Iterator<Item = &InvokerView> {
        self.invokers.iter().filter(|v| v.placeable())
    }

    /// Number of registered invokers.
    pub fn len(&self) -> usize {
        self.invokers.len()
    }

    /// True when no invokers are registered.
    pub fn is_empty(&self) -> bool {
        self.invokers.is_empty()
    }

    /// Total CPUs across placeable invokers.
    pub fn total_cpus(&self) -> u32 {
        self.placeable().map(|v| v.total_cpus).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32, cpus: u32, in_use: f64) -> InvokerView {
        let mut view = InvokerView::register(InvokerId(id), cpus, 1024, SimTime::ZERO);
        view.cpu_in_use = in_use;
        view
    }

    #[test]
    fn utilization_clamps_and_handles_zero_cpus() {
        let mut view = v(0, 4, 2.0);
        assert!((view.cpu_utilization() - 0.5).abs() < 1e-12);
        view.cpu_in_use = 10.0;
        assert_eq!(view.cpu_utilization(), 1.0);
        view.total_cpus = 0;
        view.inflight = 1;
        assert_eq!(view.cpu_utilization(), 1.0);
        view.inflight = 0;
        assert_eq!(view.cpu_utilization(), 0.0);
    }

    #[test]
    fn weighted_load_prefers_cpu() {
        let mut view = v(0, 4, 4.0); // cpu full
        view.memory_used_mb = 0;
        let w = LoadWeights::default();
        let cpu_bound = view.weighted_load(w);
        view.cpu_in_use = 0.0;
        view.memory_used_mb = 1024; // mem full
        let mem_bound = view.weighted_load(w);
        assert!(cpu_bound > mem_bound);
    }

    #[test]
    fn memory_accounting_includes_pending() {
        let mut view = v(0, 4, 0.0);
        view.memory_used_mb = 512;
        view.memory_pending_mb = 256;
        assert_eq!(view.memory_free_mb(), 256);
        assert!((view.memory_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn placeable_excludes_warned_and_unhealthy() {
        let mut view = v(0, 4, 0.0);
        assert!(view.placeable());
        view.eviction_pending = true;
        assert!(!view.placeable());
        view.eviction_pending = false;
        view.healthy = false;
        assert!(!view.placeable());
        view.healthy = true;
        view.quarantined = true;
        assert!(!view.placeable());
    }

    #[test]
    fn cluster_view_crud_stays_sorted() {
        let mut cv = ClusterView::new();
        cv.add(v(5, 4, 0.0));
        cv.add(v(1, 4, 0.0));
        cv.add(v(3, 4, 0.0));
        let ids: Vec<u32> = cv.all().iter().map(|x| x.id.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert!(cv.get(InvokerId(3)).is_some());
        cv.remove(InvokerId(3)).unwrap();
        assert!(cv.get(InvokerId(3)).is_none());
        assert_eq!(cv.len(), 2);
        cv.get_mut(InvokerId(5)).unwrap().cpu_in_use = 2.0;
        assert_eq!(cv.get(InvokerId(5)).unwrap().cpu_in_use, 2.0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut cv = ClusterView::new();
        cv.add(v(1, 4, 0.0));
        cv.add(v(1, 4, 0.0));
    }

    #[test]
    fn placeable_iterator_filters() {
        let mut cv = ClusterView::new();
        cv.add(v(0, 4, 0.0));
        let mut warned = v(1, 4, 0.0);
        warned.eviction_pending = true;
        cv.add(warned);
        assert_eq!(cv.placeable().count(), 1);
        assert_eq!(cv.total_cpus(), 4);
    }
}
