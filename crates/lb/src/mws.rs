//! Min-worker-set (MWS) load balancing — Algorithm 1 of the paper.
//!
//! MWS consolidates each function onto the smallest set of invokers whose
//! spare resources cover the function's estimated usage
//! `u_f = RPS_f · E[CPU_f] · E[lat_f]`, then sends the invocation to the
//! least-loaded member of that set. Consolidation keeps per-invoker
//! inter-arrival times below the container keep-alive, so starts stay
//! warm; growing the set under load bounds contention like JSQ does.
//!
//! The home invoker comes from consistent hashing, so VM churn reshuffles
//! only the functions anchored to the affected VM (Section 5.2), and
//! worker-set *reductions* are rate-limited to one per 30 seconds to
//! smooth oscillating load (Section 6.2).
//!
//! # The covering-set cache
//!
//! Placement is the dispatch hot path, and the naive formulation re-walks
//! the hash ring and rebuilds the covering set on every arrival. The walk
//! order, however, is a pure function of `(ring membership, placeable
//! set)`, both of which change orders of magnitude less often than
//! arrivals occur. [`Mws`] therefore caches, per function, the *prefix of
//! placeable invokers in ring-walk order*, keyed by the pair
//! `(HashRing::epoch, ClusterView::placeability_epoch)`. A steady-state
//! placement is then a cache hit: re-derive the covering-set size from
//! *live* loads over the cached prefix (an O(k) capacity-band check,
//! k = worker-set size), apply shrink damping, and pick the least-loaded
//! member — no ring walk at all.
//!
//! Correctness is structural, not probabilistic: both the covering walk
//! and the damped-set extension consume the same placeable-ring-order
//! sequence, so the cached prefix is a memoization of that sequence, and
//! every load-dependent quantity (covering size, least-loaded choice) is
//! recomputed from the live [`ClusterView`] on each hit. Cached
//! placements are **byte-identical** to the retained reference path
//! ([`Mws::place_uncached`]); a differential proptest and a
//! platform-level same-seed record-identity test enforce it.

use std::collections::HashMap;

use hrv_trace::faas::FunctionId;
use hrv_trace::time::{SimDuration, SimTime};

use crate::estimate::{StatsPriors, StatsRegistry};
use crate::hashring::{HashRing, WalkSeen};
use crate::policy::LoadBalancer;
use crate::view::{ClusterView, InvokerId, LoadWeights};

/// Minimum interval between worker-set reductions for one function.
pub const SHRINK_DAMPING: SimDuration = SimDuration::from_secs(30);

/// Extra placeable members kept in a cached walk prefix beyond what the
/// filling placement needed, so moderate usage growth (a longer covering
/// set) or damped-set growth stays a cache hit instead of forcing a
/// refill walk.
const CACHE_SLACK: usize = 2;

/// A memoized prefix of the function's placeable ring walk.
#[derive(Debug, Clone)]
struct CachedWalk {
    /// [`HashRing::epoch`] at fill time — invalidated by member churn.
    ring_epoch: u64,
    /// [`ClusterView::placeability_epoch`] at fill time — invalidated by
    /// any placeability flip (and conservatively by raw `get_mut`).
    place_epoch: u64,
    /// The first `prefix.len()` placeable invokers in ring-walk order
    /// from the function's home, each paired with its position in
    /// [`ClusterView::all`] at fill time. While both epochs match, this
    /// is exactly what a fresh walk would yield — and the positions are
    /// still exact (only `add`/`remove`/`get_mut` reorder the view, and
    /// all of them bump the placeability epoch), so hits index the view
    /// directly instead of binary-searching per member.
    prefix: Vec<(InvokerId, u32)>,
    /// True when the fill walk ran dry: `prefix` holds *every* placeable
    /// invoker, so a covering or damped set can never extend past it.
    exhausted: bool,
}

/// Per-function worker-set state: damped size plus the cached walk.
#[derive(Debug, Clone)]
struct SetState {
    /// Current worker-set size.
    k: usize,
    /// Last time the set was allowed to shrink.
    last_shrink: SimTime,
    /// Covering-set cache; `None` until the first cache-filling placement.
    cache: Option<CachedWalk>,
}

impl SetState {
    /// The size damping would yield for `target` at `now` *without*
    /// committing the shrink step — the cache-hit path peeks first so a
    /// fallback to the walk never double-applies a shrink.
    fn damped_peek(&self, target: usize, now: SimTime) -> usize {
        if target >= self.k {
            target
        } else if now.since(self.last_shrink) >= SHRINK_DAMPING {
            self.k - 1
        } else {
            self.k
        }
    }

    /// Applies the 30-second shrink damping: growth is immediate, shrink
    /// is one step per damping interval. Returns the damped size (always
    /// what [`SetState::damped_peek`] predicted).
    fn damped_commit(&mut self, target: usize, now: SimTime) -> usize {
        if target >= self.k {
            self.k = target;
        } else if now.since(self.last_shrink) >= SHRINK_DAMPING {
            self.k -= 1;
            self.last_shrink = now;
        }
        self.k
    }
}

/// Hit/miss counters of the covering-set cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MwsCacheStats {
    /// Placements served from the cached walk prefix (no ring walk).
    pub hits: u64,
    /// Placements that fell back to the full ring walk (and refilled the
    /// cache when caching is enabled).
    pub misses: u64,
}

impl MwsCacheStats {
    /// Fraction of placements served from the cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The MWS policy.
///
/// # Examples
///
/// ```
/// use hrv_lb::mws::Mws;
/// use hrv_lb::policy::LoadBalancer;
/// use hrv_lb::view::{ClusterView, InvokerId, InvokerView, LoadWeights};
/// use hrv_trace::faas::{AppId, FunctionId};
/// use hrv_trace::time::SimTime;
/// use rand::SeedableRng;
///
/// let mut mws = Mws::new(LoadWeights::default(), 1);
/// let mut view = ClusterView::new();
/// for i in 0..4 {
///     mws.on_invoker_join(InvokerId(i));
///     view.add(InvokerView::register(InvokerId(i), 8, 16 * 1024, SimTime::ZERO));
/// }
/// let f = FunctionId { app: AppId(9), func: 0 };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // A cold function goes to its consistent-hashing home VM.
/// let placed = mws.place(SimTime::ZERO, f, 256, &view, &mut rng).unwrap();
/// assert_eq!(Some(placed), mws.home(f));
/// ```
#[derive(Debug)]
pub struct Mws {
    ring: HashRing,
    stats: StatsRegistry,
    weights: LoadWeights,
    sets: HashMap<FunctionId, SetState>,
    /// Reused ring-walk dedup scratch (only the miss path walks).
    walk_seen: WalkSeen,
    /// Reused worker-set member buffer, emptied between placements.
    scratch: Vec<(InvokerId, u32)>,
    /// When false, every placement takes the reference walk path —
    /// retained for differential testing against the cache.
    cache_enabled: bool,
    cache_hits: u64,
    cache_misses: u64,
}

impl Mws {
    /// Creates an MWS balancer for a deployment with `controllers`
    /// controllers (used to scale locally observed arrival rates). The
    /// covering-set cache is on; see [`Mws::set_caching`].
    pub fn new(weights: LoadWeights, controllers: u32) -> Self {
        Mws {
            ring: HashRing::new(),
            stats: StatsRegistry::new(StatsPriors::default(), controllers),
            weights,
            sets: HashMap::new(),
            walk_seen: WalkSeen::new(),
            scratch: Vec::new(),
            cache_enabled: true,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Enables or disables the covering-set cache. Placement results are
    /// identical either way (the differential tests depend on it); the
    /// uncached mode exists for reference runs and A/B validation.
    pub fn set_caching(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Covering-set cache hit/miss counters since construction.
    pub fn cache_stats(&self) -> MwsCacheStats {
        MwsCacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
        }
    }

    /// The home invoker currently assigned to `function`, if any.
    pub fn home(&self, function: FunctionId) -> Option<InvokerId> {
        self.ring.home(function)
    }

    /// Current worker-set size for `function` (1 before any placement).
    pub fn worker_set_size(&self, function: FunctionId) -> usize {
        self.sets.get(&function).map(|s| s.k).unwrap_or(1)
    }

    /// Mutable access to the learned statistics (exposed for tests and
    /// warm-starting experiments).
    pub fn stats_mut(&mut self) -> &mut StatsRegistry {
        &mut self.stats
    }

    /// The reference placement path: one ring walk per placement, never
    /// consulting or refilling the cache. [`Mws::place`] is held
    /// byte-identical to this by a differential proptest
    /// (`crates/lb/tests/props.rs`) and a platform-level same-seed
    /// record-identity test (`tests/determinism.rs`).
    pub fn place_uncached(
        &mut self,
        now: SimTime,
        function: FunctionId,
        _memory_mb: u64,
        view: &ClusterView,
    ) -> Option<InvokerId> {
        let usage = self.stats.usage_estimate(function, now);
        self.place_walk(now, function, usage, view, false)
    }

    /// Cache-hit attempt: `Some(placement)` when the cached walk prefix
    /// is valid for the current epochs, covers `usage` under *live*
    /// loads, and is long enough for the damped set; `None` means fall
    /// back to the walk. Never walks the ring and only mutates damping
    /// state on a hit.
    fn place_cached(
        &mut self,
        now: SimTime,
        function: FunctionId,
        usage: f64,
        view: &ClusterView,
    ) -> Option<Option<InvokerId>> {
        let ring_epoch = self.ring.epoch();
        let place_epoch = view.placeability_epoch();
        let weights = self.weights;
        let state = self.sets.get_mut(&function)?;
        let cache = state.cache.as_ref()?;
        if cache.ring_epoch != ring_epoch || cache.place_epoch != place_epoch {
            return None;
        }
        // Capacity-band check fused with least-loaded selection, one
        // pass over the prefix. Matching epochs guarantee a fresh walk
        // would visit exactly these invokers in this order, so stopping
        // at the same `covered >= usage` boundary reproduces the covering
        // set exactly; the cached view positions are likewise still exact
        // (any reordering bumps the placeability epoch), with the id
        // equality guard demoting the impossible mismatch to a miss
        // rather than a wrong answer.
        let all = view.all();
        let mut covered = 0.0;
        let mut best: Option<(InvokerId, f64)> = None;
        let mut m = cache.prefix.len();
        for (i, &(id, idx)) in cache.prefix.iter().enumerate() {
            let v = all.get(idx as usize)?;
            if v.id != id {
                return None;
            }
            best = fold_least_loaded(best, id, v.weighted_load(weights));
            covered += v.usable_cpus();
            if covered >= usage {
                m = i + 1;
                break;
            }
        }
        if m == 0 {
            return None;
        }
        if covered < usage && !cache.exhausted {
            // Usage outgrew the cached prefix: the true covering set may
            // extend past it.
            return None;
        }
        // Damped size is always ≥ the covering size (growth is immediate,
        // shrink stops at the target), so the selection window extends
        // the scan above rather than restarting it.
        let k = state.damped_peek(m, now).max(1);
        if k > cache.prefix.len() && !cache.exhausted {
            // The damped set extends beyond the cached walk.
            return None;
        }
        let take = k.min(cache.prefix.len());
        for &(id, idx) in &cache.prefix[m..take] {
            let v = all.get(idx as usize)?;
            if v.id != id {
                return None;
            }
            best = fold_least_loaded(best, id, v.weighted_load(weights));
        }
        state.damped_commit(m, now);
        Some(best.map(|(id, _)| id))
    }

    /// The walk path (Algorithm 1, single pass): accumulate placeable
    /// capacity in ring order until `usage` is covered, apply damping,
    /// then *continue the same walk* to the damped size — the
    /// [`WalkSeen`] marks carry over, so extension needs no membership
    /// probe. When `refill` is set, the member prefix (plus
    /// [`CACHE_SLACK`] headroom) is stored in the cache.
    fn place_walk(
        &mut self,
        now: SimTime,
        function: FunctionId,
        usage: f64,
        view: &ClusterView,
        refill: bool,
    ) -> Option<InvokerId> {
        let Mws {
            ring,
            weights,
            sets,
            walk_seen,
            scratch,
            ..
        } = self;
        let mut members = std::mem::take(scratch);
        let mut walk = ring.walk_with(function, walk_seen);
        let mut covered = 0.0;
        for id in walk.by_ref() {
            let Some((idx, v)) = view.get_indexed(id) else {
                continue;
            };
            if !v.placeable() {
                continue;
            }
            covered += v.usable_cpus();
            members.push((id, idx as u32));
            if covered >= usage {
                break;
            }
        }
        if members.is_empty() {
            *scratch = members;
            return None;
        }
        let m = members.len();
        let entry = sets.entry(function).or_insert_with(|| SetState {
            k: m,
            last_shrink: now,
            cache: None,
        });
        let k = entry.damped_commit(m, now).max(1);

        // The damped set may be larger than the covering set; with a
        // refill pending, also gather slack members for the cache.
        let want = if refill {
            m.max(k) + CACHE_SLACK
        } else {
            m.max(k)
        };
        let mut exhausted = false;
        if members.len() < want {
            for id in walk.by_ref() {
                let Some((idx, v)) = view.get_indexed(id) else {
                    continue;
                };
                if v.placeable() {
                    members.push((id, idx as u32));
                    if members.len() >= want {
                        break;
                    }
                }
            }
            // Ran dry before `want`: every placeable invoker is listed.
            exhausted = members.len() < want;
        }

        let take = k.min(members.len());
        let all = view.all();
        let mut best: Option<(InvokerId, f64)> = None;
        for &(id, idx) in &members[..take] {
            // Indices were taken from this same view moments ago.
            let v = &all[idx as usize];
            best = fold_least_loaded(best, id, v.weighted_load(*weights));
        }
        let choice = best.map(|(id, _)| id);
        if refill {
            // Reuse the previous prefix allocation when there is one.
            let mut prefix = match entry.cache.take() {
                Some(old) => {
                    let mut p = old.prefix;
                    p.clear();
                    p
                }
                None => Vec::with_capacity(members.len()),
            };
            prefix.extend_from_slice(&members);
            entry.cache = Some(CachedWalk {
                ring_epoch: ring.epoch(),
                place_epoch: view.placeability_epoch(),
                prefix,
                exhausted,
            });
        }
        members.clear();
        *scratch = members;
        choice
    }
}

/// One step of least-loaded selection: keep `best` unless `load` is
/// strictly smaller under `total_cmp` — `Iterator::min_by` semantics,
/// ties break toward the earliest ring position. Shared by the cached
/// and reference paths so the selection semantics cannot drift apart.
#[inline]
fn fold_least_loaded(
    best: Option<(InvokerId, f64)>,
    id: InvokerId,
    load: f64,
) -> Option<(InvokerId, f64)> {
    match best {
        Some((_, incumbent)) if incumbent.total_cmp(&load) != std::cmp::Ordering::Greater => best,
        _ => Some((id, load)),
    }
}

impl LoadBalancer for Mws {
    fn name(&self) -> &'static str {
        "MWS"
    }

    fn fresh(&self) -> Box<dyn LoadBalancer> {
        let mut m = Mws::new(self.weights, self.stats.controllers());
        m.set_caching(self.cache_enabled);
        Box::new(m)
    }

    fn place(
        &mut self,
        now: SimTime,
        function: FunctionId,
        _memory_mb: u64,
        view: &ClusterView,
        _rng: &mut dyn rand::Rng,
    ) -> Option<InvokerId> {
        let usage = self.stats.usage_estimate(function, now);
        if self.cache_enabled {
            if let Some(choice) = self.place_cached(now, function, usage, view) {
                self.cache_hits += 1;
                return choice;
            }
            self.cache_misses += 1;
        }
        self.place_walk(now, function, usage, view, self.cache_enabled)
    }

    fn on_arrival(&mut self, function: FunctionId, now: SimTime) {
        self.stats.record_arrival(function, now);
    }

    fn on_completion(&mut self, function: FunctionId, duration: SimDuration, cpu_cores: f64) {
        self.stats.record_completion(function, duration, cpu_cores);
    }

    fn on_invoker_join(&mut self, id: InvokerId) {
        if !self.ring.contains(id) {
            self.ring.add(id);
        }
    }

    fn on_invoker_leave(&mut self, id: InvokerId) {
        self.ring.remove(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_trace::faas::AppId;
    use hrv_trace::time::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::view::InvokerView;

    fn f(app: u32) -> FunctionId {
        FunctionId {
            app: AppId(app),
            func: 0,
        }
    }

    fn cluster(n: u32, cpus: u32) -> (Mws, ClusterView) {
        let mut mws = Mws::new(LoadWeights::default(), 1);
        let mut view = ClusterView::new();
        for i in 0..n {
            mws.on_invoker_join(InvokerId(i));
            view.add(InvokerView::register(
                InvokerId(i),
                cpus,
                64 * 1024,
                SimTime::ZERO,
            ));
        }
        (mws, view)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn cold_function_lands_on_home() {
        let (mut mws, view) = cluster(10, 16);
        let home = mws.home(f(3)).unwrap();
        let placed = mws
            .place(SimTime::ZERO, f(3), 256, &view, &mut rng())
            .unwrap();
        // With no learned usage the covering set is {home}.
        assert_eq!(placed, home);
        assert_eq!(mws.worker_set_size(f(3)), 1);
    }

    #[test]
    fn placement_is_consolidated_at_low_load() {
        let (mut mws, view) = cluster(10, 16);
        let mut r = rng();
        let mut targets = std::collections::HashSet::new();
        for i in 0..50 {
            let now = SimTime::from_secs(i * 20); // slow arrivals
            mws.on_arrival(f(9), now);
            targets.insert(mws.place(now, f(9), 256, &view, &mut r).unwrap());
        }
        // Low-rate function stays on very few invokers (warm starts).
        assert!(targets.len() <= 2, "spread over {} invokers", targets.len());
    }

    #[test]
    fn worker_set_grows_with_learned_usage() {
        let (mut mws, mut view) = cluster(10, 8);
        let mut r = rng();
        // Teach the balancer: 10 rps × 8 s × 1 core = 80 cores needed,
        // which exceeds any single 8-CPU invoker.
        for _ in 0..20 {
            mws.on_completion(f(1), SimDuration::from_secs(8), 1.0);
        }
        let mut targets = std::collections::HashSet::new();
        for i in 0..600u64 {
            let now = SimTime::from_micros(i * 100_000); // 10 rps
            mws.on_arrival(f(1), now);
            if let Some(id) = mws.place(now, f(1), 256, &view, &mut r) {
                // Mimic the controller's optimistic load bookkeeping so
                // least-loaded selection sees its own placements.
                let v = view.get_mut(id).unwrap();
                v.cpu_in_use = (v.cpu_in_use + 0.05).min(f64::from(v.total_cpus));
                targets.insert(id);
            }
        }
        assert!(
            mws.worker_set_size(f(1)) >= 5,
            "set size {}",
            mws.worker_set_size(f(1))
        );
        assert!(targets.len() >= 5, "spread {} invokers", targets.len());
    }

    #[test]
    fn shrink_is_damped_to_one_step_per_interval() {
        let (mut mws, view) = cluster(10, 8);
        let mut r = rng();
        // Force a large set.
        for _ in 0..20 {
            mws.on_completion(f(1), SimDuration::from_secs(8), 1.0);
        }
        for i in 0..600u64 {
            let now = SimTime::from_micros(i * 100_000);
            mws.on_arrival(f(1), now);
            mws.place(now, f(1), 256, &view, &mut r);
        }
        let big = mws.worker_set_size(f(1));
        assert!(big >= 5);
        // Load vanishes; rate estimator decays. Within the damping window
        // the set may shrink at most once.
        let later = SimTime::from_secs(200);
        mws.place(later, f(1), 256, &view, &mut r);
        assert!(mws.worker_set_size(f(1)) >= big - 1);
        // After many damping intervals it shrinks step by step.
        let mut t = later;
        for _ in 0..big {
            t += SimDuration::from_secs(31);
            mws.place(t, f(1), 256, &view, &mut r);
        }
        assert!(mws.worker_set_size(f(1)) < big, "never shrank from {big}");
    }

    #[test]
    fn warned_invokers_are_skipped() {
        let (mut mws, mut view) = cluster(4, 16);
        let home = mws.home(f(2)).unwrap();
        view.get_mut(home).unwrap().eviction_pending = true;
        let placed = mws
            .place(SimTime::ZERO, f(2), 256, &view, &mut rng())
            .unwrap();
        assert_ne!(placed, home);
    }

    #[test]
    fn no_placeable_invokers_returns_none() {
        let (mut mws, mut view) = cluster(3, 16);
        for i in 0..3 {
            view.get_mut(InvokerId(i)).unwrap().healthy = false;
        }
        assert!(mws
            .place(SimTime::ZERO, f(0), 256, &view, &mut rng())
            .is_none());
    }

    #[test]
    fn churn_keeps_most_homes_stable() {
        let (mut mws, _) = cluster(10, 16);
        let homes_before: Vec<InvokerId> = (0..500).map(|a| mws.home(f(a)).unwrap()).collect();
        mws.on_invoker_leave(InvokerId(7));
        let mut moved = 0;
        for (a, &before) in homes_before.iter().enumerate() {
            let after = mws.home(f(a as u32)).unwrap();
            if after != before {
                moved += 1;
                assert_eq!(before, InvokerId(7));
            }
        }
        assert!(moved > 0 && moved < 150, "moved {moved}");
    }

    #[test]
    fn least_loaded_member_wins() {
        let (mut mws, mut view) = cluster(3, 16);
        // Teach a usage that needs ~2 invokers (20 cores > 16).
        for _ in 0..10 {
            mws.on_completion(f(5), SimDuration::from_secs(2), 1.0);
        }
        let mut r = rng();
        for i in 0..300u64 {
            let now = SimTime::from_micros(i * 100_000);
            mws.on_arrival(f(5), now);
            mws.place(now, f(5), 256, &view, &mut r);
        }
        let now = SimTime::from_secs(31);
        // Saturate the home invoker; the alternative must win.
        let home = mws.home(f(5)).unwrap();
        view.get_mut(home).unwrap().cpu_in_use = 16.0;
        let placed = mws.place(now, f(5), 256, &view, &mut r).unwrap();
        assert_ne!(placed, home);
    }

    /// Two balancers fed the same observation stream: one places through
    /// the cache, the twin through the reference walk.
    fn twins(n: u32, cpus: u32) -> (Mws, Mws, ClusterView) {
        let (cached, view) = cluster(n, cpus);
        let (reference, _) = cluster(n, cpus);
        (cached, reference, view)
    }

    #[test]
    fn steady_state_placements_are_cache_hits() {
        let (mut mws, mut view) = cluster(8, 8);
        let mut r = rng();
        for i in 0..500u64 {
            let now = SimTime::from_micros(i * 50_000);
            mws.on_arrival(f(4), now);
            let id = mws.place(now, f(4), 256, &view, &mut r).unwrap();
            // Controller-style load-only bookkeeping: epochs stay put.
            view.update(id, |v| {
                v.cpu_in_use = (v.cpu_in_use + 0.2).min(8.0);
            });
            if i % 3 == 2 {
                view.update(id, |v| {
                    v.cpu_in_use = (v.cpu_in_use - 0.5).max(0.0);
                });
            }
        }
        let stats = mws.cache_stats();
        assert_eq!(stats.hits + stats.misses, 500);
        assert!(stats.hit_rate() > 0.9, "steady state should hit: {stats:?}");
    }

    #[test]
    fn cached_matches_uncached_under_load_drift() {
        let (mut cached, mut reference, mut view) = twins(8, 8);
        // Teach both a usage large enough for multi-member sets.
        for _ in 0..20 {
            cached.on_completion(f(1), SimDuration::from_secs(4), 1.0);
            reference.on_completion(f(1), SimDuration::from_secs(4), 1.0);
        }
        let mut r = rng();
        for i in 0..800u64 {
            let now = SimTime::from_micros(i * 100_000);
            cached.on_arrival(f(1), now);
            reference.on_arrival(f(1), now);
            let a = cached.place(now, f(1), 256, &view, &mut r);
            let b = reference.place_uncached(now, f(1), 256, &view);
            assert_eq!(a, b, "diverged at step {i}");
            assert_eq!(
                cached.worker_set_size(f(1)),
                reference.worker_set_size(f(1))
            );
            if let Some(id) = a {
                // Load-only drift through `update`: the cache must follow
                // the moving covering boundary via its live band check.
                view.update(id, |v| {
                    v.cpu_in_use = (v.cpu_in_use + 0.7).min(8.0);
                });
                view.update(InvokerId((i % 8) as u32), |v| {
                    v.cpu_in_use = (v.cpu_in_use - 0.9).max(0.0);
                });
            }
        }
        let stats = cached.cache_stats();
        assert!(stats.hits > 0, "cache never engaged: {stats:?}");
    }

    #[test]
    fn churn_invalidates_and_placements_stay_identical() {
        let (mut cached, mut reference, mut view) = twins(6, 8);
        for _ in 0..10 {
            cached.on_completion(f(2), SimDuration::from_secs(5), 1.0);
            reference.on_completion(f(2), SimDuration::from_secs(5), 1.0);
        }
        let mut r = rng();
        for i in 0..400u64 {
            let now = SimTime::from_micros(i * 100_000);
            cached.on_arrival(f(2), now);
            reference.on_arrival(f(2), now);
            match i {
                100 => {
                    // An invoker leaves mid-stream (ring epoch bump).
                    cached.on_invoker_leave(InvokerId(3));
                    reference.on_invoker_leave(InvokerId(3));
                    view.remove(InvokerId(3)).unwrap();
                }
                200 => {
                    // ... and rejoins.
                    cached.on_invoker_join(InvokerId(3));
                    reference.on_invoker_join(InvokerId(3));
                    view.add(InvokerView::register(InvokerId(3), 8, 64 * 1024, now));
                }
                300 => {
                    // Placeability flip without membership churn.
                    view.update(InvokerId(1), |v| v.eviction_pending = true);
                }
                350 => {
                    view.update(InvokerId(1), |v| v.eviction_pending = false);
                }
                _ => {}
            }
            let a = cached.place(now, f(2), 256, &view, &mut r);
            let b = reference.place_uncached(now, f(2), 256, &view);
            assert_eq!(a, b, "diverged at step {i}");
        }
    }

    #[test]
    fn home_leave_and_rejoin_preserves_shrink_damping() {
        let (mut mws, mut view) = cluster(10, 8);
        let mut r = rng();
        for _ in 0..20 {
            mws.on_completion(f(1), SimDuration::from_secs(8), 1.0);
        }
        for i in 0..600u64 {
            let now = SimTime::from_micros(i * 100_000);
            mws.on_arrival(f(1), now);
            mws.place(now, f(1), 256, &view, &mut r);
        }
        let big = mws.worker_set_size(f(1));
        assert!(big >= 5);
        let home = mws.home(f(1)).unwrap();
        // Home leaves and rejoins: ring epoch bumps twice, the function's
        // walk prefix changes, but the per-function damping state must
        // survive — no panic, no damping reset.
        mws.on_invoker_leave(home);
        view.remove(home).unwrap();
        let t1 = SimTime::from_secs(120);
        mws.place(t1, f(1), 256, &view, &mut r);
        assert!(
            mws.worker_set_size(f(1)) >= big - 1,
            "shrink skipped damping after home leave"
        );
        mws.on_invoker_join(home);
        view.add(InvokerView::register(home, 8, 64 * 1024, t1));
        // Rate has decayed to zero; the set may shrink only one step per
        // 30 s interval despite the churn.
        let t2 = SimTime::from_secs(125);
        mws.place(t2, f(1), 256, &view, &mut r);
        let after_rejoin = mws.worker_set_size(f(1));
        assert!(
            after_rejoin >= big - 1,
            "rejoin skipped damping: {after_rejoin} from {big}"
        );
        let t3 = SimTime::from_secs(126);
        mws.place(t3, f(1), 256, &view, &mut r);
        assert!(
            mws.worker_set_size(f(1)) >= after_rejoin.saturating_sub(0),
            "second shrink inside the damping window"
        );
    }

    #[test]
    fn disabled_cache_never_counts() {
        let (mut mws, view) = cluster(4, 8);
        mws.set_caching(false);
        let mut r = rng();
        for i in 0..50u64 {
            let now = SimTime::from_micros(i * 100_000);
            mws.on_arrival(f(7), now);
            mws.place(now, f(7), 256, &view, &mut r).unwrap();
        }
        assert_eq!(mws.cache_stats(), MwsCacheStats::default());
    }
}
