//! Min-worker-set (MWS) load balancing — Algorithm 1 of the paper.
//!
//! MWS consolidates each function onto the smallest set of invokers whose
//! spare resources cover the function's estimated usage
//! `u_f = RPS_f · E[CPU_f] · E[lat_f]`, then sends the invocation to the
//! least-loaded member of that set. Consolidation keeps per-invoker
//! inter-arrival times below the container keep-alive, so starts stay
//! warm; growing the set under load bounds contention like JSQ does.
//!
//! The home invoker comes from consistent hashing, so VM churn reshuffles
//! only the functions anchored to the affected VM (Section 5.2), and
//! worker-set *reductions* are rate-limited to one per 30 seconds to
//! smooth oscillating load (Section 6.2).

use std::collections::HashMap;

use hrv_trace::faas::FunctionId;
use hrv_trace::time::{SimDuration, SimTime};

use crate::estimate::{StatsPriors, StatsRegistry};
use crate::hashring::{HashRing, WalkSeen};
use crate::policy::LoadBalancer;
use crate::view::{ClusterView, InvokerId, LoadWeights};

/// Minimum interval between worker-set reductions for one function.
pub const SHRINK_DAMPING: SimDuration = SimDuration::from_secs(30);

#[derive(Debug, Clone, Copy)]
struct SetState {
    /// Current worker-set size.
    k: usize,
    /// Last time the set was allowed to shrink.
    last_shrink: SimTime,
}

/// The MWS policy.
///
/// # Examples
///
/// ```
/// use hrv_lb::mws::Mws;
/// use hrv_lb::policy::LoadBalancer;
/// use hrv_lb::view::{ClusterView, InvokerId, InvokerView, LoadWeights};
/// use hrv_trace::faas::{AppId, FunctionId};
/// use hrv_trace::time::SimTime;
/// use rand::SeedableRng;
///
/// let mut mws = Mws::new(LoadWeights::default(), 1);
/// let mut view = ClusterView::new();
/// for i in 0..4 {
///     mws.on_invoker_join(InvokerId(i));
///     view.add(InvokerView::register(InvokerId(i), 8, 16 * 1024, SimTime::ZERO));
/// }
/// let f = FunctionId { app: AppId(9), func: 0 };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // A cold function goes to its consistent-hashing home VM.
/// let placed = mws.place(SimTime::ZERO, f, 256, &view, &mut rng).unwrap();
/// assert_eq!(Some(placed), mws.home(f));
/// ```
#[derive(Debug)]
pub struct Mws {
    ring: HashRing,
    stats: StatsRegistry,
    weights: LoadWeights,
    sets: HashMap<FunctionId, SetState>,
    /// Reused ring-walk dedup scratch (placement is the hot path: one or
    /// two walks per arrival).
    walk_seen: WalkSeen,
    /// Reused worker-set member buffer, emptied between placements.
    scratch: Vec<InvokerId>,
}

impl Mws {
    /// Creates an MWS balancer for a deployment with `controllers`
    /// controllers (used to scale locally observed arrival rates).
    pub fn new(weights: LoadWeights, controllers: u32) -> Self {
        Mws {
            ring: HashRing::new(),
            stats: StatsRegistry::new(StatsPriors::default(), controllers),
            weights,
            sets: HashMap::new(),
            walk_seen: WalkSeen::new(),
            scratch: Vec::new(),
        }
    }

    /// The home invoker currently assigned to `function`, if any.
    pub fn home(&self, function: FunctionId) -> Option<InvokerId> {
        self.ring.home(function)
    }

    /// Current worker-set size for `function` (1 before any placement).
    pub fn worker_set_size(&self, function: FunctionId) -> usize {
        self.sets.get(&function).map(|s| s.k).unwrap_or(1)
    }

    /// Mutable access to the learned statistics (exposed for tests and
    /// warm-starting experiments).
    pub fn stats_mut(&mut self) -> &mut StatsRegistry {
        &mut self.stats
    }

    /// Computes the minimal covering set per Algorithm 1 into `out`: walk
    /// clockwise from the home VM accumulating `usable_resources` until
    /// the function's estimated usage is covered. Only placeable invokers
    /// count. Yields at least one member when any invoker is placeable.
    /// Free function over the fields it needs so `place` can borrow the
    /// ring, the walk scratch, and the member buffer disjointly.
    fn covering_set_into(
        ring: &HashRing,
        seen: &mut WalkSeen,
        usage: f64,
        function: FunctionId,
        view: &ClusterView,
        out: &mut Vec<InvokerId>,
    ) {
        out.clear();
        let mut covered = 0.0;
        for id in ring.walk_with(function, seen) {
            let Some(v) = view.get(id) else { continue };
            if !v.placeable() {
                continue;
            }
            covered += v.usable_cpus();
            out.push(id);
            if covered >= usage && !out.is_empty() {
                break;
            }
        }
    }

    /// Applies the 30-second shrink damping: growth is immediate, shrink
    /// is one step per damping interval.
    fn damped_size(&mut self, function: FunctionId, target: usize, now: SimTime) -> usize {
        let entry = self.sets.entry(function).or_insert(SetState {
            k: target,
            last_shrink: now,
        });
        if target >= entry.k {
            entry.k = target;
        } else if now.since(entry.last_shrink) >= SHRINK_DAMPING {
            entry.k -= 1;
            entry.last_shrink = now;
        }
        entry.k
    }
}

impl LoadBalancer for Mws {
    fn name(&self) -> &'static str {
        "MWS"
    }

    fn place(
        &mut self,
        now: SimTime,
        function: FunctionId,
        _memory_mb: u64,
        view: &ClusterView,
        _rng: &mut dyn rand::Rng,
    ) -> Option<InvokerId> {
        let usage = self.stats.usage_estimate(function, now);
        let mut members = std::mem::take(&mut self.scratch);
        Self::covering_set_into(
            &self.ring,
            &mut self.walk_seen,
            usage,
            function,
            view,
            &mut members,
        );
        if members.is_empty() {
            self.scratch = members;
            return None;
        }
        let k = self.damped_size(function, members.len(), now).max(1);

        // The damped set may be larger than the covering set: extend the
        // walk to `k` placeable members.
        if members.len() < k {
            for id in self.ring.walk_with(function, &mut self.walk_seen) {
                if members.len() >= k {
                    break;
                }
                if members.contains(&id) {
                    continue;
                }
                let Some(v) = view.get(id) else { continue };
                if v.placeable() {
                    members.push(id);
                }
            }
        } else {
            members.truncate(k);
        }

        // Least-loaded member by the weighted CPU+memory metric; ties break
        // toward the earliest ring position (stable).
        let choice = members
            .iter()
            .filter_map(|&id| view.get(id))
            .min_by(|a, b| {
                a.weighted_load(self.weights)
                    .total_cmp(&b.weighted_load(self.weights))
            })
            .map(|v| v.id);
        members.clear();
        self.scratch = members;
        choice
    }

    fn on_arrival(&mut self, function: FunctionId, now: SimTime) {
        self.stats.record_arrival(function, now);
    }

    fn on_completion(&mut self, function: FunctionId, duration: SimDuration, cpu_cores: f64) {
        self.stats.record_completion(function, duration, cpu_cores);
    }

    fn on_invoker_join(&mut self, id: InvokerId) {
        if !self.ring.contains(id) {
            self.ring.add(id);
        }
    }

    fn on_invoker_leave(&mut self, id: InvokerId) {
        self.ring.remove(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_trace::faas::AppId;
    use hrv_trace::time::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::view::InvokerView;

    fn f(app: u32) -> FunctionId {
        FunctionId {
            app: AppId(app),
            func: 0,
        }
    }

    fn cluster(n: u32, cpus: u32) -> (Mws, ClusterView) {
        let mut mws = Mws::new(LoadWeights::default(), 1);
        let mut view = ClusterView::new();
        for i in 0..n {
            mws.on_invoker_join(InvokerId(i));
            view.add(InvokerView::register(
                InvokerId(i),
                cpus,
                64 * 1024,
                SimTime::ZERO,
            ));
        }
        (mws, view)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn cold_function_lands_on_home() {
        let (mut mws, view) = cluster(10, 16);
        let home = mws.home(f(3)).unwrap();
        let placed = mws
            .place(SimTime::ZERO, f(3), 256, &view, &mut rng())
            .unwrap();
        // With no learned usage the covering set is {home}.
        assert_eq!(placed, home);
        assert_eq!(mws.worker_set_size(f(3)), 1);
    }

    #[test]
    fn placement_is_consolidated_at_low_load() {
        let (mut mws, view) = cluster(10, 16);
        let mut r = rng();
        let mut targets = std::collections::HashSet::new();
        for i in 0..50 {
            let now = SimTime::from_secs(i * 20); // slow arrivals
            mws.on_arrival(f(9), now);
            targets.insert(mws.place(now, f(9), 256, &view, &mut r).unwrap());
        }
        // Low-rate function stays on very few invokers (warm starts).
        assert!(targets.len() <= 2, "spread over {} invokers", targets.len());
    }

    #[test]
    fn worker_set_grows_with_learned_usage() {
        let (mut mws, mut view) = cluster(10, 8);
        let mut r = rng();
        // Teach the balancer: 10 rps × 8 s × 1 core = 80 cores needed,
        // which exceeds any single 8-CPU invoker.
        for _ in 0..20 {
            mws.on_completion(f(1), SimDuration::from_secs(8), 1.0);
        }
        let mut targets = std::collections::HashSet::new();
        for i in 0..600u64 {
            let now = SimTime::from_micros(i * 100_000); // 10 rps
            mws.on_arrival(f(1), now);
            if let Some(id) = mws.place(now, f(1), 256, &view, &mut r) {
                // Mimic the controller's optimistic load bookkeeping so
                // least-loaded selection sees its own placements.
                let v = view.get_mut(id).unwrap();
                v.cpu_in_use = (v.cpu_in_use + 0.05).min(f64::from(v.total_cpus));
                targets.insert(id);
            }
        }
        assert!(
            mws.worker_set_size(f(1)) >= 5,
            "set size {}",
            mws.worker_set_size(f(1))
        );
        assert!(targets.len() >= 5, "spread {} invokers", targets.len());
    }

    #[test]
    fn shrink_is_damped_to_one_step_per_interval() {
        let (mut mws, view) = cluster(10, 8);
        let mut r = rng();
        // Force a large set.
        for _ in 0..20 {
            mws.on_completion(f(1), SimDuration::from_secs(8), 1.0);
        }
        for i in 0..600u64 {
            let now = SimTime::from_micros(i * 100_000);
            mws.on_arrival(f(1), now);
            mws.place(now, f(1), 256, &view, &mut r);
        }
        let big = mws.worker_set_size(f(1));
        assert!(big >= 5);
        // Load vanishes; rate estimator decays. Within the damping window
        // the set may shrink at most once.
        let later = SimTime::from_secs(200);
        mws.place(later, f(1), 256, &view, &mut r);
        assert!(mws.worker_set_size(f(1)) >= big - 1);
        // After many damping intervals it shrinks step by step.
        let mut t = later;
        for _ in 0..big {
            t += SimDuration::from_secs(31);
            mws.place(t, f(1), 256, &view, &mut r);
        }
        assert!(mws.worker_set_size(f(1)) < big, "never shrank from {big}");
    }

    #[test]
    fn warned_invokers_are_skipped() {
        let (mut mws, mut view) = cluster(4, 16);
        let home = mws.home(f(2)).unwrap();
        view.get_mut(home).unwrap().eviction_pending = true;
        let placed = mws
            .place(SimTime::ZERO, f(2), 256, &view, &mut rng())
            .unwrap();
        assert_ne!(placed, home);
    }

    #[test]
    fn no_placeable_invokers_returns_none() {
        let (mut mws, mut view) = cluster(3, 16);
        for i in 0..3 {
            view.get_mut(InvokerId(i)).unwrap().healthy = false;
        }
        assert!(mws
            .place(SimTime::ZERO, f(0), 256, &view, &mut rng())
            .is_none());
    }

    #[test]
    fn churn_keeps_most_homes_stable() {
        let (mut mws, _) = cluster(10, 16);
        let homes_before: Vec<InvokerId> = (0..500).map(|a| mws.home(f(a)).unwrap()).collect();
        mws.on_invoker_leave(InvokerId(7));
        let mut moved = 0;
        for (a, &before) in homes_before.iter().enumerate() {
            let after = mws.home(f(a as u32)).unwrap();
            if after != before {
                moved += 1;
                assert_eq!(before, InvokerId(7));
            }
        }
        assert!(moved > 0 && moved < 150, "moved {moved}");
    }

    #[test]
    fn least_loaded_member_wins() {
        let (mut mws, mut view) = cluster(3, 16);
        // Teach a usage that needs ~2 invokers (20 cores > 16).
        for _ in 0..10 {
            mws.on_completion(f(5), SimDuration::from_secs(2), 1.0);
        }
        let mut r = rng();
        for i in 0..300u64 {
            let now = SimTime::from_micros(i * 100_000);
            mws.on_arrival(f(5), now);
            mws.place(now, f(5), 256, &view, &mut r);
        }
        let now = SimTime::from_secs(31);
        // Saturate the home invoker; the alternative must win.
        let home = mws.home(f(5)).unwrap();
        view.get_mut(home).unwrap().cpu_in_use = 16.0;
        let placed = mws.place(now, f(5), 256, &view, &mut r).unwrap();
        assert_ne!(placed, home);
    }
}
