//! Consistent hashing for home-VM assignment (Section 5.2).
//!
//! MWS anchors every function to a *home* invoker and grows the worker set
//! clockwise from there. Consistent hashing keeps home assignments stable
//! when VMs are evicted or deployed: only the functions whose home was the
//! departed VM (or falls to the new VM) are reshuffled, which is what
//! keeps the cold-start rate flat across churn.
//!
//! Ring walks are the placement hot path (one or two per arrival), so the
//! ring stores compact member *slots* instead of invoker ids and walk
//! deduplication uses an epoch-stamped mark table ([`WalkSeen`]) that a
//! caller can reuse across placements — a full walk allocates nothing.

use hrv_trace::faas::FunctionId;
use hrv_trace::rng::{label_id, splitmix64};

use crate::view::InvokerId;

/// Number of virtual nodes per invoker. More replicas smooth the key-space
/// share each invoker owns at the cost of a bigger ring.
pub const DEFAULT_VNODES: u32 = 64;

/// Reusable walk-deduplication scratch: one mark per member slot, stamped
/// with the epoch of the walk that last saw it. Starting a new walk bumps
/// the epoch instead of clearing the marks, so `begin` is O(1) and a walk
/// performs zero allocations once the table has grown to the fleet size.
#[derive(Debug, Clone, Default)]
pub struct WalkSeen {
    epoch: u64,
    marks: Vec<u64>,
}

impl WalkSeen {
    /// Creates an empty scratch table.
    pub fn new() -> Self {
        WalkSeen::default()
    }

    fn begin(&mut self, members: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale marks could alias the new epoch.
            self.marks.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
        if self.marks.len() < members {
            self.marks.resize(members, 0);
        }
    }

    /// Marks `slot` as seen this walk; returns true if it was new.
    fn insert(&mut self, slot: u32) -> bool {
        let m = &mut self.marks[slot as usize];
        if *m == self.epoch {
            false
        } else {
            *m = self.epoch;
            true
        }
    }
}

/// A consistent-hash ring over invokers with virtual nodes.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// `(hash, member slot)` pairs sorted by hash. Slots index `members`.
    ring: Vec<(u64, u32)>,
    /// Slot → invoker table; slots are dense and renumbered on removal.
    members: Vec<InvokerId>,
    vnodes: u32,
    /// Bumped on every membership change; walk order is a pure function
    /// of the ring content, so two walks at the same epoch (and the same
    /// start hash) yield the same invoker sequence. Lets callers cache
    /// walk results and invalidate on churn without diffing membership.
    epoch: u64,
}

impl HashRing {
    /// Creates an empty ring with [`DEFAULT_VNODES`] replicas per invoker.
    pub fn new() -> Self {
        HashRing {
            ring: Vec::new(),
            members: Vec::new(),
            vnodes: DEFAULT_VNODES,
            epoch: 0,
        }
    }

    /// Creates an empty ring with a custom replica count.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero.
    pub fn with_vnodes(vnodes: u32) -> Self {
        assert!(vnodes >= 1);
        HashRing {
            ring: Vec::new(),
            members: Vec::new(),
            vnodes,
            epoch: 0,
        }
    }

    /// Monotone membership epoch: bumped by every [`HashRing::add`] and
    /// successful [`HashRing::remove`]. Deterministic — it counts
    /// membership events, so same-seeded runs see the same epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn vnode_hash(id: InvokerId, replica: u32) -> u64 {
        let packed = (u64::from(id.0) << 32) | u64::from(replica);
        splitmix64(packed ^ 0xA5A5_5A5A_0F0F_F0F0)
    }

    /// Hashes a function to its ring position.
    pub fn function_hash(f: FunctionId) -> u64 {
        splitmix64(label_id("fn") ^ ((u64::from(f.app.0) << 32) | u64::from(f.func)))
    }

    /// Adds an invoker's virtual nodes.
    ///
    /// # Panics
    ///
    /// Panics if the invoker is already on the ring.
    pub fn add(&mut self, id: InvokerId) {
        assert!(!self.contains(id), "invoker {id:?} already on ring");
        self.epoch += 1;
        let slot = self.members.len() as u32;
        self.members.push(id);
        for r in 0..self.vnodes {
            let h = Self::vnode_hash(id, r);
            let pos = self.ring.partition_point(|&(rh, _)| rh < h);
            self.ring.insert(pos, (h, slot));
        }
    }

    /// Removes an invoker's virtual nodes. Returns `true` if it was present.
    pub fn remove(&mut self, id: InvokerId) -> bool {
        let Some(slot) = self.members.iter().position(|&m| m == id) else {
            return false;
        };
        self.epoch += 1;
        let slot = slot as u32;
        let last = (self.members.len() - 1) as u32;
        self.ring.retain(|&(_, s)| s != slot);
        self.members.swap_remove(slot as usize);
        if slot != last {
            // The member formerly in the last slot moved into the hole.
            for entry in &mut self.ring {
                if entry.1 == last {
                    entry.1 = slot;
                }
            }
        }
        true
    }

    /// True if the invoker has nodes on the ring.
    pub fn contains(&self, id: InvokerId) -> bool {
        self.members.contains(&id)
    }

    /// Number of distinct invokers on the ring.
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The home invoker of `function`: the first vnode clockwise from the
    /// function's hash. Returns `None` on an empty ring.
    pub fn home(&self, function: FunctionId) -> Option<InvokerId> {
        self.successors(Self::function_hash(function)).next()
    }

    /// Walks invokers clockwise from `hash`, skipping duplicate invokers,
    /// visiting each member exactly once. Allocates its own dedup scratch;
    /// hot paths should prefer [`HashRing::successors_with`].
    pub fn successors(&self, hash: u64) -> Successors<'_> {
        let mut seen = WalkSeen::new();
        seen.begin(self.members.len());
        Successors {
            ring: &self.ring,
            members: &self.members,
            offset: 0,
            start: self.ring.partition_point(|&(rh, _)| rh < hash),
            seen: SeenStore::Owned(seen),
        }
    }

    /// Like [`HashRing::successors`], but deduplicates through a
    /// caller-owned [`WalkSeen`] so repeated walks allocate nothing.
    pub fn successors_with<'a>(&'a self, hash: u64, seen: &'a mut WalkSeen) -> Successors<'a> {
        seen.begin(self.members.len());
        Successors {
            ring: &self.ring,
            members: &self.members,
            offset: 0,
            start: self.ring.partition_point(|&(rh, _)| rh < hash),
            seen: SeenStore::Borrowed(seen),
        }
    }

    /// Walks invokers clockwise starting at `function`'s home — the MWS
    /// worker-set growth order (`CH(f)`, `next(VM)`, ... in Algorithm 1).
    pub fn walk(&self, function: FunctionId) -> Successors<'_> {
        self.successors(Self::function_hash(function))
    }

    /// Allocation-free variant of [`HashRing::walk`].
    pub fn walk_with<'a>(&'a self, function: FunctionId, seen: &'a mut WalkSeen) -> Successors<'a> {
        self.successors_with(Self::function_hash(function), seen)
    }
}

#[derive(Debug)]
enum SeenStore<'a> {
    Owned(WalkSeen),
    Borrowed(&'a mut WalkSeen),
}

impl SeenStore<'_> {
    fn get(&mut self) -> &mut WalkSeen {
        match self {
            SeenStore::Owned(s) => s,
            SeenStore::Borrowed(s) => s,
        }
    }
}

/// Iterator over distinct invokers in clockwise ring order.
///
/// Deduplication uses epoch-stamped slot marks so a full walk is O(ring)
/// rather than O(members²); the *yield order* stays the deterministic ring
/// order.
#[derive(Debug)]
pub struct Successors<'a> {
    ring: &'a [(u64, u32)],
    members: &'a [InvokerId],
    offset: usize,
    start: usize,
    seen: SeenStore<'a>,
}

impl Iterator for Successors<'_> {
    type Item = InvokerId;

    fn next(&mut self) -> Option<InvokerId> {
        while self.offset < self.ring.len() {
            let idx = (self.start + self.offset) % self.ring.len();
            self.offset += 1;
            let (_, slot) = self.ring[idx];
            if self.seen.get().insert(slot) {
                return Some(self.members[slot as usize]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_trace::faas::AppId;

    fn f(app: u32, func: u32) -> FunctionId {
        FunctionId {
            app: AppId(app),
            func,
        }
    }

    fn ring_of(n: u32) -> HashRing {
        let mut ring = HashRing::new();
        for i in 0..n {
            ring.add(InvokerId(i));
        }
        ring
    }

    #[test]
    fn empty_ring_has_no_home() {
        let ring = HashRing::new();
        assert!(ring.home(f(1, 0)).is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn home_is_stable() {
        let ring = ring_of(10);
        let h1 = ring.home(f(42, 1)).unwrap();
        let h2 = ring.home(f(42, 1)).unwrap();
        assert_eq!(h1, h2);
    }

    #[test]
    fn walk_visits_every_member_once() {
        let ring = ring_of(8);
        let order: Vec<InvokerId> = ring.walk(f(7, 0)).collect();
        assert_eq!(order.len(), 8);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert_eq!(order[0], ring.home(f(7, 0)).unwrap());
    }

    #[test]
    fn walk_with_reused_scratch_matches_allocating_walk() {
        let ring = ring_of(12);
        let mut seen = WalkSeen::new();
        for app in 0..200u32 {
            let func = f(app, 0);
            let borrowed: Vec<InvokerId> = ring.walk_with(func, &mut seen).collect();
            let owned: Vec<InvokerId> = ring.walk(func).collect();
            assert_eq!(borrowed, owned);
        }
    }

    #[test]
    fn walk_with_scratch_survives_membership_churn() {
        let mut ring = ring_of(6);
        let mut seen = WalkSeen::new();
        assert_eq!(ring.walk_with(f(3, 0), &mut seen).count(), 6);
        ring.remove(InvokerId(2));
        assert_eq!(ring.walk_with(f(3, 0), &mut seen).count(), 5);
        ring.add(InvokerId(9));
        ring.add(InvokerId(10));
        let order: Vec<InvokerId> = ring.walk_with(f(3, 0), &mut seen).collect();
        assert_eq!(order.len(), 7);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
    }

    #[test]
    fn removal_only_moves_orphaned_functions() {
        let ring10 = ring_of(10);
        let mut ring9 = ring_of(10);
        ring9.remove(InvokerId(4));

        let mut moved = 0;
        let mut total = 0;
        for app in 0..2_000u32 {
            let func = f(app, 0);
            let before = ring10.home(func).unwrap();
            let after = ring9.home(func).unwrap();
            total += 1;
            if before != after {
                moved += 1;
                // Every function that moved must have had the removed
                // invoker as its home — the consistent-hashing guarantee.
                assert_eq!(before, InvokerId(4));
            }
        }
        // Expect ~1/10 of functions to move.
        let frac = f64::from(moved) / f64::from(total);
        assert!((0.04..=0.18).contains(&frac), "moved {frac}");
    }

    #[test]
    fn addition_steals_only_for_new_member() {
        let ring10 = ring_of(10);
        let mut ring11 = ring_of(10);
        ring11.add(InvokerId(10));
        for app in 0..2_000u32 {
            let func = f(app, 0);
            let before = ring10.home(func).unwrap();
            let after = ring11.home(func).unwrap();
            if before != after {
                assert_eq!(after, InvokerId(10));
            }
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = ring_of(10);
        let mut counts = [0u32; 10];
        for app in 0..20_000u32 {
            let home = ring.home(f(app, 0)).unwrap();
            counts[home.0 as usize] += 1;
        }
        let expected = 2_000.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.5, "invoker {i} owns {c} functions");
        }
    }

    #[test]
    fn members_counts_distinct_invokers() {
        let mut ring = ring_of(3);
        assert_eq!(ring.members(), 3);
        ring.remove(InvokerId(1));
        assert_eq!(ring.members(), 2);
        assert!(!ring.contains(InvokerId(1)));
    }

    #[test]
    fn slot_renumbering_keeps_ring_consistent() {
        // Removing a middle member swaps the last slot into the hole; every
        // remaining vnode must still resolve to its original invoker.
        let mut ring = ring_of(5);
        ring.remove(InvokerId(1));
        let order: Vec<InvokerId> = ring.walk(f(0, 0)).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![InvokerId(0), InvokerId(2), InvokerId(3), InvokerId(4)]
        );
        // Homes of surviving members' functions match a ring built fresh.
        let fresh = {
            let mut r = HashRing::new();
            for i in [0u32, 2, 3, 4] {
                r.add(InvokerId(i));
            }
            r
        };
        for app in 0..500u32 {
            assert_eq!(ring.home(f(app, 0)), fresh.home(f(app, 0)));
        }
    }

    #[test]
    fn epoch_counts_membership_changes() {
        let mut ring = HashRing::new();
        assert_eq!(ring.epoch(), 0);
        ring.add(InvokerId(0));
        ring.add(InvokerId(1));
        assert_eq!(ring.epoch(), 2);
        // Removing an absent member is not a membership change.
        assert!(!ring.remove(InvokerId(9)));
        assert_eq!(ring.epoch(), 2);
        assert!(ring.remove(InvokerId(0)));
        assert_eq!(ring.epoch(), 3);
        // Rejoin bumps again: walk order may differ from the original
        // ring even though the member set matches.
        ring.add(InvokerId(0));
        assert_eq!(ring.epoch(), 4);
    }

    #[test]
    #[should_panic(expected = "already on ring")]
    fn double_add_panics() {
        let mut ring = ring_of(1);
        ring.add(InvokerId(0));
    }

    #[test]
    fn single_vnode_ring_works() {
        let mut ring = HashRing::with_vnodes(1);
        ring.add(InvokerId(0));
        ring.add(InvokerId(1));
        assert!(ring.home(f(0, 0)).is_some());
        assert_eq!(ring.walk(f(0, 0)).count(), 2);
    }
}
