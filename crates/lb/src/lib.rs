//! # hrv-lb
//!
//! Load-balancing policies for serverless platforms on harvested
//! resources: the paper's **min-worker-set (MWS)** algorithm
//! ([`mws`]), the **join-the-shortest-queue** family ([`jsq`]),
//! **vanilla OpenWhisk** memory bin-packing ([`vanilla`]), and simple
//! baselines ([`simple`]); plus the consistent-hash ring ([`hashring`]),
//! the controller's fleet view ([`view`]), and the learned per-function
//! statistics ([`estimate`]) they consume.

pub mod estimate;
pub mod hashring;
pub mod jsq;
pub mod mws;
pub mod ownership;
pub mod policy;
pub mod simple;
pub mod vanilla;
pub mod view;

pub use ownership::{owned_arc, owner_of};
pub use policy::{LoadBalancer, PolicyKind};
pub use view::{ClusterView, InvokerId, InvokerView, LoadWeights};
