//! The load-balancer interface and policy registry.

use hrv_trace::faas::FunctionId;
use hrv_trace::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::jsq::{Jsq, JsqMetric};
use crate::mws::Mws;
use crate::simple::{Random, RoundRobin};
use crate::vanilla::VanillaOpenWhisk;
use crate::view::{ClusterView, InvokerId, LoadWeights};

/// A placement policy: given the controller's fleet view, picks the invoker
/// that should run an invocation.
///
/// Implementations are fed the controller's observation stream —
/// arrivals, completions, and invoker churn — and must never inspect
/// anything beyond the [`ClusterView`] (no oracle access to ground truth).
pub trait LoadBalancer: std::fmt::Debug + Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Chooses an invoker for one invocation of `function` needing
    /// `memory_mb` of container memory. Returns `None` when no invoker can
    /// accept work (the caller queues or rejects).
    fn place(
        &mut self,
        now: SimTime,
        function: FunctionId,
        memory_mb: u64,
        view: &ClusterView,
        rng: &mut dyn rand::Rng,
    ) -> Option<InvokerId>;

    /// Observes an invocation arrival (before placement).
    fn on_arrival(&mut self, _function: FunctionId, _now: SimTime) {}

    /// Observes a completed invocation's measured duration and CPU usage.
    fn on_completion(&mut self, _function: FunctionId, _duration: SimDuration, _cpu_cores: f64) {}

    /// Observes an invoker joining the fleet.
    fn on_invoker_join(&mut self, _id: InvokerId) {}

    /// Observes an invoker leaving the fleet (eviction, crash, scale-in).
    fn on_invoker_leave(&mut self, _id: InvokerId) {}

    /// Builds a fresh instance of the same policy with empty learned
    /// state — used to stamp out controller replicas, each of which
    /// observes only its own functions.
    fn fresh(&self) -> Box<dyn LoadBalancer>;
}

/// Declarative policy selection, used by experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Min-worker-set — the paper's contribution (Section 5.2).
    Mws,
    /// Join-the-shortest-queue on weighted CPU+memory utilization
    /// (Section 5.1).
    Jsq,
    /// JSQ using raw queue length (ablation; Section 5.1 argues it is
    /// worse).
    JsqQueueLength,
    /// JSQ using expected-demand-weighted queue length (ablation).
    JsqWeightedQueueLength,
    /// JSQ sampling `d` random invokers instead of scanning all
    /// (power-of-d-choices; Section 5.1's overhead reduction).
    JsqSampled(usize),
    /// Vanilla OpenWhisk memory bin-packing (Section 6.1), quota = full
    /// VM memory.
    Vanilla,
    /// Vanilla OpenWhisk with an explicit per-invoker user-memory quota
    /// in MiB (deployed OpenWhisk's `userMemory`).
    VanillaQuota(u64),
    /// Uniform random placement.
    Random,
    /// Round-robin placement.
    RoundRobin,
}

impl PolicyKind {
    /// Builds a fresh policy instance.
    pub fn build(self) -> Box<dyn LoadBalancer> {
        match self {
            PolicyKind::Mws => Box::new(Mws::new(LoadWeights::default(), 1)),
            PolicyKind::Jsq => Box::new(Jsq::new(JsqMetric::WeightedUtilization, None)),
            PolicyKind::JsqQueueLength => Box::new(Jsq::new(JsqMetric::QueueLength, None)),
            PolicyKind::JsqWeightedQueueLength => {
                Box::new(Jsq::new(JsqMetric::WeightedQueueLength, None))
            }
            PolicyKind::JsqSampled(d) => {
                Box::new(Jsq::new(JsqMetric::WeightedUtilization, Some(d)))
            }
            PolicyKind::Vanilla => Box::new(VanillaOpenWhisk::new()),
            PolicyKind::VanillaQuota(mb) => Box::new(VanillaOpenWhisk::with_quota(mb)),
            PolicyKind::Random => Box::new(Random::new()),
            PolicyKind::RoundRobin => Box::new(RoundRobin::new()),
        }
    }

    /// Stable label for reports.
    pub fn label(self) -> String {
        match self {
            PolicyKind::Mws => "MWS".into(),
            PolicyKind::Jsq => "JSQ".into(),
            PolicyKind::JsqQueueLength => "JSQ-qlen".into(),
            PolicyKind::JsqWeightedQueueLength => "JSQ-wqlen".into(),
            PolicyKind::JsqSampled(d) => format!("JSQ-d{d}"),
            PolicyKind::Vanilla => "Vanilla".into(),
            PolicyKind::VanillaQuota(mb) => format!("Vanilla-q{mb}"),
            PolicyKind::Random => "Random".into(),
            PolicyKind::RoundRobin => "RoundRobin".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds() {
        let kinds = [
            PolicyKind::Mws,
            PolicyKind::Jsq,
            PolicyKind::JsqQueueLength,
            PolicyKind::JsqWeightedQueueLength,
            PolicyKind::JsqSampled(2),
            PolicyKind::Vanilla,
            PolicyKind::VanillaQuota(2_048),
            PolicyKind::Random,
            PolicyKind::RoundRobin,
        ];
        for kind in kinds {
            let lb = kind.build();
            assert!(!lb.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }
}
