//! Function → controller-replica ownership for the partitioned placement
//! path.
//!
//! A replicated controller partitions *functions*, not ring members: every
//! replica keeps the full [`crate::hashring::HashRing`], but each function
//! is placed by exactly one replica — the one whose arc of the 64-bit hash
//! space contains the function's ring-walk start
//! ([`HashRing::function_hash`]). Partitioning by walk start preserves the
//! MWS locality argument: a replica owns a contiguous arc, so the worker
//! sets of its functions cluster on neighbouring ring positions.
//!
//! The map is a *total, deterministic* function of `(replica count,
//! function id)` alone. It does not read ring membership, so it is
//! trivially stable under invoker join/leave (any epoch): ownership never
//! migrates between replicas mid-run, which is what lets a replica's
//! per-function state (MWS arrival-rate estimates, covering-set cache,
//! learned run times) live privately with no handoff protocol.

use hrv_trace::faas::FunctionId;

use crate::hashring::HashRing;

/// The replica owning `function` out of `replicas` controller replicas.
///
/// Maps the function's 64-bit walk-start hash onto `[0, replicas)` by
/// fixed-point multiplication — an exact arc partition of the hash space
/// with no modulo bias. Always 0 when `replicas == 1`.
///
/// # Panics
///
/// Panics if `replicas` is zero.
pub fn owner_of(replicas: u32, function: FunctionId) -> u32 {
    assert!(replicas >= 1, "need at least one replica");
    let h = HashRing::function_hash(function);
    ((u128::from(h) * u128::from(replicas)) >> 64) as u32
}

/// The half-open arc `[start, end)` of the 64-bit hash space owned by
/// `replica` (for `replica == replicas - 1` the arc is `[start, 2^64)`,
/// reported as `end == u64::MAX` inclusive via [`ArcRange::contains`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcRange {
    /// First hash of the arc.
    pub start: u64,
    /// One past the last hash of the arc, saturating at `u64::MAX` for
    /// the final replica (whose arc is closed at the top).
    pub end: u64,
    /// Whether `end` itself belongs to the arc (final replica only).
    pub closed: bool,
}

impl ArcRange {
    /// Whether `hash` falls in this arc.
    pub fn contains(&self, hash: u64) -> bool {
        hash >= self.start && (hash < self.end || (self.closed && hash == self.end))
    }
}

/// The hash arc owned by `replica` — the ring partition iterator's bounds.
///
/// # Panics
///
/// Panics unless `replica < replicas` and `replicas >= 1`.
pub fn owned_arc(replicas: u32, replica: u32) -> ArcRange {
    assert!(replicas >= 1, "need at least one replica");
    assert!(replica < replicas, "replica {replica} of {replicas}");
    let width = |r: u32| -> u64 {
        // Inverse of the fixed-point map: smallest h with
        // (h * replicas) >> 64 == r is ceil(r * 2^64 / replicas).
        let num = u128::from(r) << 64;
        let den = u128::from(replicas);
        num.div_ceil(den) as u64
    };
    let start = width(replica);
    if replica + 1 == replicas {
        ArcRange {
            start,
            end: u64::MAX,
            closed: true,
        }
    } else {
        ArcRange {
            start,
            end: width(replica + 1),
            closed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_trace::faas::AppId;

    fn f(app: u32, func: u32) -> FunctionId {
        FunctionId {
            app: AppId(app),
            func,
        }
    }

    #[test]
    fn single_replica_owns_everything() {
        for app in 0..500u32 {
            assert_eq!(owner_of(1, f(app, app % 7)), 0);
        }
    }

    #[test]
    fn owner_matches_arc() {
        for replicas in [1u32, 2, 3, 4, 8, 13] {
            for app in 0..500u32 {
                let func = f(app, 0);
                let owner = owner_of(replicas, func);
                assert!(owner < replicas);
                let arc = owned_arc(replicas, owner);
                assert!(
                    arc.contains(HashRing::function_hash(func)),
                    "fn {app} owner {owner}/{replicas} outside its arc"
                );
            }
        }
    }

    #[test]
    fn arcs_tile_the_hash_space() {
        for replicas in [1u32, 2, 4, 8] {
            let arcs: Vec<ArcRange> = (0..replicas).map(|r| owned_arc(replicas, r)).collect();
            assert_eq!(arcs[0].start, 0);
            for w in arcs.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap or overlap between arcs");
                assert!(!w[0].closed);
            }
            assert!(arcs.last().unwrap().closed);
            assert_eq!(arcs.last().unwrap().end, u64::MAX);
        }
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let replicas = 4u32;
        let mut counts = vec![0u32; replicas as usize];
        for app in 0..20_000u32 {
            counts[owner_of(replicas, f(app, 0)) as usize] += 1;
        }
        let expected = 5_000.0;
        for (r, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.1, "replica {r} owns {c} functions");
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        owner_of(0, f(0, 0));
    }
}
