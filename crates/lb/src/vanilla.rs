//! Vanilla OpenWhisk load balancing (Section 6.1).
//!
//! "OpenWhisk by default implements memory bin packing: the Controller
//! keeps track of memory usage of all pending invocations ... and
//! iteratively directs all incoming invocations to one Invoker until the
//! memory quota of that Invoker is exhausted."
//!
//! The policy is CPU-blind and harvest-blind: it keeps stuffing the
//! current invoker while memory remains, even when that invoker's CPUs
//! have shrunk to a sliver — which is exactly why it saturates at a
//! fraction of MWS's throughput on heterogeneous clusters (Figure 12).

use hrv_trace::faas::FunctionId;
use hrv_trace::time::SimTime;

use crate::policy::LoadBalancer;
use crate::view::{ClusterView, InvokerId};

/// The vanilla OpenWhisk memory bin-packing policy.
#[derive(Debug, Default)]
pub struct VanillaOpenWhisk {
    /// The invoker currently being filled.
    cursor: Option<InvokerId>,
    /// Per-invoker user-memory quota; `None` uses the VM's full memory.
    /// Deployed OpenWhisk configures this (`userMemory`) well below VM
    /// memory, which bounds how much pending work one invoker absorbs.
    quota_mb: Option<u64>,
}

impl VanillaOpenWhisk {
    /// Creates the policy with the VM's full memory as the quota.
    pub fn new() -> Self {
        VanillaOpenWhisk::default()
    }

    /// Creates the policy with an explicit per-invoker user-memory quota.
    pub fn with_quota(quota_mb: u64) -> Self {
        VanillaOpenWhisk {
            cursor: None,
            quota_mb: Some(quota_mb),
        }
    }

    fn fits(&self, view: &ClusterView, id: InvokerId, memory_mb: u64) -> bool {
        // OpenWhisk's controller books only *pending invocation* memory
        // against the invoker quota — warm containers are the invoker's
        // business. This is why vanilla keeps hammering one invoker long
        // after its CPUs have saturated.
        view.get(id)
            .map(|v| {
                let quota = self.quota_mb.map_or(v.memory_mb, |q| q.min(v.memory_mb));
                v.healthy && quota.saturating_sub(v.memory_pending_mb) >= memory_mb
            })
            .unwrap_or(false)
    }
}

impl LoadBalancer for VanillaOpenWhisk {
    fn name(&self) -> &'static str {
        "Vanilla"
    }

    fn fresh(&self) -> Box<dyn LoadBalancer> {
        Box::new(VanillaOpenWhisk {
            cursor: None,
            quota_mb: self.quota_mb,
        })
    }

    fn place(
        &mut self,
        _now: SimTime,
        _function: FunctionId,
        memory_mb: u64,
        view: &ClusterView,
        _rng: &mut dyn rand::Rng,
    ) -> Option<InvokerId> {
        // Keep filling the current invoker while its memory quota lasts.
        // Note: vanilla OpenWhisk is not harvest-aware, so it ignores
        // eviction warnings (only hard unhealthiness stops it).
        if let Some(cur) = self.cursor {
            if self.fits(view, cur, memory_mb) {
                return Some(cur);
            }
        }
        // Memory exhausted (or first placement): advance to the next
        // invoker with room, scanning in id order from the cursor.
        let all = view.all();
        if all.is_empty() {
            return None;
        }
        let start = self
            .cursor
            .map(|c| all.partition_point(|v| v.id <= c))
            .unwrap_or(0);
        for k in 0..all.len() {
            let v = &all[(start + k) % all.len()];
            if self.fits(view, v.id, memory_mb) {
                self.cursor = Some(v.id);
                return Some(v.id);
            }
        }
        None
    }

    fn on_invoker_leave(&mut self, id: InvokerId) {
        if self.cursor == Some(id) {
            self.cursor = None;
        }
    }
}

#[cfg(test)]
mod quota_tests {
    use super::*;
    use hrv_trace::faas::AppId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::view::InvokerView;

    #[test]
    fn quota_spills_before_vm_memory() {
        let mut view = ClusterView::new();
        for i in 0..2 {
            view.add(InvokerView::register(
                InvokerId(i),
                8,
                64 * 1024,
                hrv_trace::time::SimTime::ZERO,
            ));
        }
        let mut lb = VanillaOpenWhisk::with_quota(512);
        let mut rng = StdRng::seed_from_u64(0);
        let f = FunctionId {
            app: AppId(0),
            func: 0,
        };
        let mut placements = Vec::new();
        for _ in 0..4 {
            let id = lb
                .place(hrv_trace::time::SimTime::ZERO, f, 256, &view, &mut rng)
                .unwrap();
            view.get_mut(id).unwrap().memory_pending_mb += 256;
            placements.push(id.0);
        }
        // 512 MiB quota = two 256 MiB placements per invoker.
        assert_eq!(placements, vec![0, 0, 1, 1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_trace::faas::AppId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::view::InvokerView;

    fn f() -> FunctionId {
        FunctionId {
            app: AppId(0),
            func: 0,
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4)
    }

    fn small_view(mem_mb: u64) -> ClusterView {
        let mut view = ClusterView::new();
        for i in 0..3 {
            view.add(InvokerView::register(
                InvokerId(i),
                8,
                mem_mb,
                SimTime::ZERO,
            ));
        }
        view
    }

    #[test]
    fn packs_one_invoker_until_memory_exhausted() {
        let mut view = small_view(1_024);
        let mut lb = VanillaOpenWhisk::new();
        let mut r = rng();
        // Each placement commits 256 MiB (the caller updates the view, as
        // the controller does).
        let mut placements = Vec::new();
        for _ in 0..8 {
            let id = lb.place(SimTime::ZERO, f(), 256, &view, &mut r).unwrap();
            view.get_mut(id).unwrap().memory_pending_mb += 256;
            placements.push(id.0);
        }
        assert_eq!(placements, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn ignores_cpu_load_entirely() {
        let mut view = small_view(64 * 1024);
        // Invoker 0 is CPU-saturated; vanilla does not care.
        view.get_mut(InvokerId(0)).unwrap().cpu_in_use = 8.0;
        let mut lb = VanillaOpenWhisk::new();
        let placed = lb
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(0));
    }

    #[test]
    fn ignores_eviction_warnings() {
        let mut view = small_view(64 * 1024);
        view.get_mut(InvokerId(0)).unwrap().eviction_pending = true;
        let mut lb = VanillaOpenWhisk::new();
        // Not harvest-aware: still places on the warned invoker.
        let placed = lb
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(0));
    }

    #[test]
    fn skips_unhealthy_invokers() {
        let mut view = small_view(64 * 1024);
        view.get_mut(InvokerId(0)).unwrap().healthy = false;
        let mut lb = VanillaOpenWhisk::new();
        let placed = lb
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(1));
    }

    #[test]
    fn returns_none_when_all_memory_is_full() {
        let mut view = small_view(256);
        for i in 0..3 {
            view.get_mut(InvokerId(i)).unwrap().memory_pending_mb = 256;
        }
        let mut lb = VanillaOpenWhisk::new();
        assert!(lb
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .is_none());
    }

    #[test]
    fn warm_container_memory_does_not_stop_packing() {
        // Only pending (in-flight) memory counts against the quota; the
        // invoker's warm containers are invisible to the controller's
        // bin-packing — OpenWhisk semantics.
        let mut view = small_view(1_024);
        view.get_mut(InvokerId(0)).unwrap().memory_used_mb = 1_024;
        let mut lb = VanillaOpenWhisk::new();
        let placed = lb
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(0));
    }

    #[test]
    fn cursor_resets_when_invoker_leaves() {
        let mut view = small_view(64 * 1024);
        let mut lb = VanillaOpenWhisk::new();
        let first = lb
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(first, InvokerId(0));
        lb.on_invoker_leave(InvokerId(0));
        view.remove(InvokerId(0));
        let next = lb
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_ne!(next, InvokerId(0));
    }
}
