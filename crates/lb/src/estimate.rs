//! Controller-side per-function statistics.
//!
//! The modified OpenWhisk controller (Section 6.2) maintains, per function,
//! histograms of observed execution times and CPU usage plus a periodically
//! updated invocation arrival rate; MWS consumes their expectations. These
//! are *learned online from samples* — the load balancer never peeks at the
//! workload model's ground truth.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use hrv_trace::faas::FunctionId;
use hrv_trace::time::{SimDuration, SimTime};

/// A small positive-valued histogram over log-spaced bins with an exact
/// running mean. The histogram gives percentile estimates; the mean feeds
/// the MWS usage estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleHistogram {
    lo: f64,
    ratio_ln: f64,
    counts: Vec<u64>,
    n: u64,
    sum: f64,
}

impl SampleHistogram {
    /// Creates a histogram over `[lo, hi)` with `bins` log-spaced bins.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && bins >= 1);
        SampleHistogram {
            lo,
            ratio_ln: (hi / lo).ln() / bins as f64,
            counts: vec![0; bins + 2], // + under/overflow
            n: 0,
            sum: 0.0,
        }
    }

    /// Default spec for execution durations: 1 ms – 1 h.
    pub fn for_durations() -> Self {
        SampleHistogram::new(0.001, 3_600.0, 64)
    }

    /// Default spec for per-invocation CPU usage: 1/64 – 64 cores.
    pub fn for_cpu() -> Self {
        SampleHistogram::new(1.0 / 64.0, 64.0, 48)
    }

    /// Records one sample (clamped into range for binning; the mean uses
    /// the exact value).
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite() && x >= 0.0, "bad sample {x}");
        self.n += 1;
        self.sum += x;
        let idx = if x < self.lo {
            0
        } else {
            let i = ((x / self.lo).ln() / self.ratio_ln) as usize;
            (i + 1).min(self.counts.len() - 1)
        };
        self.counts[idx] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Exact sample mean, or `None` before any sample arrives.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum / self.n as f64)
        }
    }

    /// Approximate `p`-th percentile from the binned counts (upper bin
    /// edge), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p));
        if self.n == 0 {
            return None;
        }
        let target = (p / 100.0 * self.n as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(if i == 0 {
                    self.lo
                } else {
                    self.lo * ((i as f64) * self.ratio_ln).exp()
                });
            }
        }
        Some(self.lo * ((self.counts.len() as f64) * self.ratio_ln).exp())
    }
}

/// Sliding-window arrival-rate estimator: counts arrivals in rotating
/// fixed-width buckets and reports the rate over the covered window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateEstimator {
    bucket_width: SimDuration,
    buckets: Vec<u64>,
    /// Index of the bucket epoch currently being filled.
    epoch: u64,
    /// Total arrivals ever (for bootstrapping diagnostics).
    total: u64,
    started: bool,
}

impl RateEstimator {
    /// Creates an estimator with `n_buckets` buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `n_buckets < 2`.
    pub fn new(bucket_width: SimDuration, n_buckets: usize) -> Self {
        assert!(!bucket_width.is_zero() && n_buckets >= 2);
        RateEstimator {
            bucket_width,
            buckets: vec![0; n_buckets],
            epoch: 0,
            total: 0,
            started: false,
        }
    }

    /// Default: six 10-second buckets (a one-minute window).
    pub fn default_window() -> Self {
        RateEstimator::new(SimDuration::from_secs(10), 6)
    }

    fn epoch_of(&self, now: SimTime) -> u64 {
        now.as_micros() / self.bucket_width.as_micros()
    }

    /// Rotates buckets forward to `now`, zeroing skipped epochs.
    fn rotate(&mut self, now: SimTime) {
        let e = self.epoch_of(now);
        if !self.started {
            self.epoch = e;
            self.started = true;
            return;
        }
        if e <= self.epoch {
            return;
        }
        let skipped = (e - self.epoch).min(self.buckets.len() as u64);
        for k in 1..=skipped {
            let idx = ((self.epoch + k) % self.buckets.len() as u64) as usize;
            self.buckets[idx] = 0;
        }
        self.epoch = e;
    }

    /// Records one arrival at `now`.
    pub fn record_arrival(&mut self, now: SimTime) {
        self.rotate(now);
        let idx = (self.epoch % self.buckets.len() as u64) as usize;
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Estimated arrivals/second over the sliding window at `now`.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.rotate(now);
        let window = self.bucket_width.as_secs_f64() * self.buckets.len() as f64;
        self.buckets.iter().sum::<u64>() as f64 / window
    }

    /// Total arrivals ever recorded.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Everything the controller has learned about one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionStats {
    /// Observed execution durations, seconds.
    pub duration: SampleHistogram,
    /// Observed CPU usage, cores.
    pub cpu: SampleHistogram,
    /// Arrival-rate estimator.
    pub arrivals: RateEstimator,
}

impl Default for FunctionStats {
    fn default() -> Self {
        FunctionStats {
            duration: SampleHistogram::for_durations(),
            cpu: SampleHistogram::for_cpu(),
            arrivals: RateEstimator::default_window(),
        }
    }
}

/// Priors used before any completion sample exists for a function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatsPriors {
    /// Assumed execution time, seconds.
    pub duration_secs: f64,
    /// Assumed CPU usage, cores.
    pub cpu_cores: f64,
}

impl Default for StatsPriors {
    fn default() -> Self {
        StatsPriors {
            duration_secs: 1.0,
            cpu_cores: 1.0,
        }
    }
}

/// Per-function statistics registry for one controller.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    stats: HashMap<FunctionId, FunctionStats>,
    priors: StatsPriors,
    /// Number of controllers in the deployment; each controller sees
    /// `1/controllers` of the arrivals and multiplies its local estimate
    /// back up (Section 6.2).
    controllers: u32,
}

impl StatsRegistry {
    /// Creates a registry for a deployment with `controllers` controllers.
    pub fn new(priors: StatsPriors, controllers: u32) -> Self {
        assert!(controllers >= 1);
        StatsRegistry {
            stats: HashMap::new(),
            priors,
            controllers,
        }
    }

    /// Number of controllers this registry scales local rates by.
    pub fn controllers(&self) -> u32 {
        self.controllers
    }

    /// Records a function arrival.
    pub fn record_arrival(&mut self, f: FunctionId, now: SimTime) {
        self.stats
            .entry(f)
            .or_default()
            .arrivals
            .record_arrival(now);
    }

    /// Records a completed invocation's measured duration and CPU usage
    /// (reported back by the invoker in its response message).
    pub fn record_completion(&mut self, f: FunctionId, duration: SimDuration, cpu_cores: f64) {
        let s = self.stats.entry(f).or_default();
        s.duration.record(duration.as_secs_f64());
        s.cpu.record(cpu_cores);
    }

    /// Expected duration in seconds (prior until samples exist).
    pub fn expected_duration(&self, f: FunctionId) -> f64 {
        self.stats
            .get(&f)
            .and_then(|s| s.duration.mean())
            .unwrap_or(self.priors.duration_secs)
    }

    /// Expected CPU usage in cores (prior until samples exist).
    pub fn expected_cpu(&self, f: FunctionId) -> f64 {
        self.stats
            .get(&f)
            .and_then(|s| s.cpu.mean())
            .unwrap_or(self.priors.cpu_cores)
    }

    /// Estimated *total* arrival rate across the deployment: the local
    /// rate multiplied by the controller count.
    pub fn estimated_rps(&mut self, f: FunctionId, now: SimTime) -> f64 {
        let controllers = f64::from(self.controllers);
        self.stats
            .get_mut(&f)
            .map(|s| s.arrivals.rate(now) * controllers)
            .unwrap_or(0.0)
    }

    /// The MWS usage estimate `u_f = RPS · E[cpu] · E[duration]`, in cores
    /// (Algorithm 1). Placement calls this once per arrival, and the
    /// covering-set cache re-checks it against a capacity band on every
    /// hit, so it resolves the function's stats with a *single* hash
    /// lookup instead of chaining [`StatsRegistry::estimated_rps`] /
    /// [`StatsRegistry::expected_cpu`] / [`StatsRegistry::expected_duration`]
    /// (three lookups). Semantics are identical: priors apply until
    /// samples exist, and an unknown function estimates 0 (its rate is 0).
    pub fn usage_estimate(&mut self, f: FunctionId, now: SimTime) -> f64 {
        let controllers = f64::from(self.controllers);
        let priors = self.priors;
        match self.stats.get_mut(&f) {
            None => 0.0,
            Some(s) => {
                let rps = s.arrivals.rate(now) * controllers;
                rps * s.cpu.mean().unwrap_or(priors.cpu_cores)
                    * s.duration.mean().unwrap_or(priors.duration_secs)
            }
        }
    }

    /// Number of functions with any recorded state.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_trace::faas::AppId;

    fn f(app: u32) -> FunctionId {
        FunctionId {
            app: AppId(app),
            func: 0,
        }
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = SampleHistogram::for_durations();
        for x in [0.1, 0.2, 0.3] {
            h.record(x);
        }
        assert!((h.mean().unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_percentile_brackets_value() {
        let mut h = SampleHistogram::new(0.001, 1_000.0, 120);
        for i in 1..=1_000 {
            h.record(i as f64 / 100.0); // 0.01 .. 10.0
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((4.0..7.0).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!((9.0..12.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn histogram_empty_has_no_estimates() {
        let h = SampleHistogram::for_cpu();
        assert!(h.mean().is_none());
        assert!(h.percentile(50.0).is_none());
    }

    #[test]
    fn histogram_out_of_range_samples_clamp() {
        let mut h = SampleHistogram::new(1.0, 10.0, 4);
        h.record(0.5);
        h.record(100.0);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(10.0).unwrap() <= 1.0);
    }

    #[test]
    fn rate_estimator_tracks_steady_rate() {
        let mut r = RateEstimator::default_window();
        // 5 arrivals/second for 2 minutes.
        for i in 0..600u64 {
            r.record_arrival(SimTime::from_micros(i * 200_000));
        }
        let rate = r.rate(SimTime::from_secs(120));
        assert!((rate - 5.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn rate_estimator_decays_after_idle() {
        let mut r = RateEstimator::default_window();
        for i in 0..100u64 {
            r.record_arrival(SimTime::from_micros(i * 100_000));
        }
        assert!(r.rate(SimTime::from_secs(10)) > 0.5);
        // Two minutes of silence: window empties.
        assert_eq!(r.rate(SimTime::from_secs(140)), 0.0);
        assert_eq!(r.total(), 100);
    }

    #[test]
    fn registry_uses_priors_until_samples() {
        let mut reg = StatsRegistry::new(StatsPriors::default(), 1);
        assert_eq!(reg.expected_duration(f(1)), 1.0);
        assert_eq!(reg.expected_cpu(f(1)), 1.0);
        assert_eq!(reg.estimated_rps(f(1), SimTime::ZERO), 0.0);
        reg.record_completion(f(1), SimDuration::from_secs(4), 1.0);
        assert!((reg.expected_duration(f(1)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn usage_estimate_is_littles_law() {
        let mut reg = StatsRegistry::new(StatsPriors::default(), 1);
        // 2 rps × 3 s × 1 core ≈ 6 cores.
        for i in 0..120u64 {
            reg.record_arrival(f(1), SimTime::from_micros(i * 500_000));
        }
        for _ in 0..10 {
            reg.record_completion(f(1), SimDuration::from_secs(3), 1.0);
        }
        let u = reg.usage_estimate(f(1), SimTime::from_secs(60));
        assert!((u - 6.0).abs() < 1.5, "usage {u}");
    }

    #[test]
    fn usage_estimate_matches_three_lookup_product() {
        let mut reg = StatsRegistry::new(StatsPriors::default(), 3);
        // Unknown function: zero, not priors-product.
        assert_eq!(reg.usage_estimate(f(9), SimTime::ZERO), 0.0);
        for i in 0..40u64 {
            reg.record_arrival(f(2), SimTime::from_micros(i * 250_000));
        }
        reg.record_completion(f(2), SimDuration::from_secs(2), 1.5);
        let now = SimTime::from_secs(10);
        let product =
            reg.estimated_rps(f(2), now) * reg.expected_cpu(f(2)) * reg.expected_duration(f(2));
        assert!((reg.usage_estimate(f(2), now) - product).abs() < 1e-12);
        // Arrivals-only function: completion means fall back to priors.
        for i in 0..40u64 {
            reg.record_arrival(f(3), SimTime::from_micros(i * 250_000));
        }
        let product =
            reg.estimated_rps(f(3), now) * reg.expected_cpu(f(3)) * reg.expected_duration(f(3));
        assert!((reg.usage_estimate(f(3), now) - product).abs() < 1e-12);
    }

    #[test]
    fn controller_count_scales_rps() {
        let mut reg = StatsRegistry::new(StatsPriors::default(), 2);
        for i in 0..60u64 {
            reg.record_arrival(f(1), SimTime::from_secs(i));
        }
        let rps = reg.estimated_rps(f(1), SimTime::from_secs(59));
        assert!((rps - 2.0).abs() < 0.5, "rps {rps}");
    }
}
