//! Join-the-shortest-queue load balancing (Section 5.1).
//!
//! JSQ sends each invocation to the backend with the least pending work.
//! The paper argues the right "pending work" proxy on Harvest VMs is the
//! weighted CPU+memory *utilization* — it tracks the varying CPU
//! allocation and avoids starving shrunken VMs — and shows queue-length
//! proxies are worse. All three variants are implemented for the ablation,
//! plus power-of-`d` sampling to cut the `O(N)` scan.

use hrv_trace::faas::FunctionId;
use hrv_trace::time::{SimDuration, SimTime};
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::estimate::{StatsPriors, StatsRegistry};
use crate::policy::LoadBalancer;
use crate::view::{ClusterView, InvokerId, InvokerView, LoadWeights};

/// Which pending-work proxy JSQ minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JsqMetric {
    /// `w_c · cpu_util + w_m · mem_util` — the paper's choice.
    WeightedUtilization,
    /// Number of in-flight invocations on the invoker.
    QueueLength,
    /// In-flight invocations weighted by their expected demand
    /// (CPU-seconds), normalized by the invoker's current CPUs.
    WeightedQueueLength,
}

/// The JSQ policy.
#[derive(Debug)]
pub struct Jsq {
    metric: JsqMetric,
    /// When `Some(d)`, score only `d` randomly sampled candidates
    /// (power-of-d-choices) instead of the whole fleet.
    sample_d: Option<usize>,
    weights: LoadWeights,
    stats: StatsRegistry,
    /// Reused index buffer for Floyd's sampling (placement is the hot
    /// path: one call per arrival).
    scratch: Vec<usize>,
}

impl Jsq {
    /// Creates a JSQ balancer with the given metric and optional
    /// power-of-`d` sampling.
    ///
    /// # Panics
    ///
    /// Panics if `sample_d` is `Some(0)`.
    pub fn new(metric: JsqMetric, sample_d: Option<usize>) -> Self {
        if let Some(d) = sample_d {
            assert!(d >= 1, "power-of-d needs d >= 1");
        }
        Jsq {
            metric,
            sample_d,
            weights: LoadWeights::default(),
            stats: StatsRegistry::new(StatsPriors::default(), 1),
            scratch: Vec::new(),
        }
    }

    fn score(&self, v: &InvokerView) -> f64 {
        match self.metric {
            JsqMetric::WeightedUtilization => v.weighted_load(self.weights),
            JsqMetric::QueueLength => f64::from(v.inflight),
            JsqMetric::WeightedQueueLength => {
                if v.total_cpus == 0 {
                    f64::INFINITY
                } else {
                    v.inflight_demand_secs / f64::from(v.total_cpus)
                }
            }
        }
    }
}

impl LoadBalancer for Jsq {
    fn name(&self) -> &'static str {
        match (self.metric, self.sample_d) {
            (JsqMetric::WeightedUtilization, None) => "JSQ",
            (JsqMetric::WeightedUtilization, Some(_)) => "JSQ-sampled",
            (JsqMetric::QueueLength, _) => "JSQ-qlen",
            (JsqMetric::WeightedQueueLength, _) => "JSQ-wqlen",
        }
    }

    fn fresh(&self) -> Box<dyn LoadBalancer> {
        Box::new(Jsq::new(self.metric, self.sample_d))
    }

    fn place(
        &mut self,
        _now: SimTime,
        _function: FunctionId,
        _memory_mb: u64,
        view: &ClusterView,
        rng: &mut dyn rand::Rng,
    ) -> Option<InvokerId> {
        let full_scan = |jsq: &Jsq| {
            view.placeable()
                .min_by(|a, b| jsq.score(a).total_cmp(&jsq.score(b)).then(a.id.cmp(&b.id)))
                .map(|v| v.id)
        };
        match self.sample_d {
            Some(d) => {
                // Candidates are the placeable invokers in id order. The
                // view's maintained index gives indexed access with no
                // allocation; a dirty view (raw get_mut happened) falls
                // back to collecting positions once.
                let all = view.all();
                let fallback: Vec<u32>;
                let positions: &[u32] = match view.placeable_positions() {
                    Some(p) => p,
                    None => {
                        fallback = all
                            .iter()
                            .enumerate()
                            .filter(|(_, v)| v.placeable())
                            .map(|(i, _)| i as u32)
                            .collect();
                        &fallback
                    }
                };
                let n = positions.len();
                if n == 0 {
                    return None;
                }
                if d >= n {
                    return full_scan(self);
                }
                // Sample d distinct indices (Floyd's algorithm keeps the
                // draw count at exactly d) and fold the minimum inline —
                // no second candidate list is materialized.
                let mut chosen = std::mem::take(&mut self.scratch);
                chosen.clear();
                let mut best: Option<(f64, &InvokerView)> = None;
                for j in (n - d)..n {
                    let t = rng.random_range(0..=j);
                    let idx = if chosen.contains(&t) { j } else { t };
                    chosen.push(idx);
                    let v = &all[positions[idx] as usize];
                    let s = self.score(v);
                    best = Some(match best {
                        Some((bs, bv)) if bs.total_cmp(&s).then(bv.id.cmp(&v.id)).is_le() => {
                            (bs, bv)
                        }
                        _ => (s, v),
                    });
                }
                self.scratch = chosen;
                best.map(|(_, v)| v.id)
            }
            None => full_scan(self),
        }
    }

    fn on_arrival(&mut self, function: FunctionId, now: SimTime) {
        self.stats.record_arrival(function, now);
    }

    fn on_completion(&mut self, function: FunctionId, duration: SimDuration, cpu_cores: f64) {
        self.stats.record_completion(function, duration, cpu_cores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_trace::faas::AppId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn f() -> FunctionId {
        FunctionId {
            app: AppId(0),
            func: 0,
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    fn view_of(loads: &[(u32, u32, f64)]) -> ClusterView {
        let mut view = ClusterView::new();
        for &(id, cpus, in_use) in loads {
            let mut v = InvokerView::register(InvokerId(id), cpus, 64 * 1024, SimTime::ZERO);
            v.cpu_in_use = in_use;
            view.add(v);
        }
        view
    }

    #[test]
    fn picks_least_utilized() {
        let view = view_of(&[(0, 8, 6.0), (1, 8, 2.0), (2, 8, 7.0)]);
        let mut jsq = Jsq::new(JsqMetric::WeightedUtilization, None);
        let placed = jsq
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(1));
    }

    #[test]
    fn utilization_metric_respects_shrunken_vms() {
        // Invoker 0 has more free *cores* in absolute terms but higher
        // utilization; the utilization metric avoids piling more work on
        // the shrunken invoker 1 only when its relative load is higher.
        let view = view_of(&[(0, 32, 24.0), (1, 4, 3.5)]);
        let mut jsq = Jsq::new(JsqMetric::WeightedUtilization, None);
        let placed = jsq
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(0), "0 is 75% utilized, 1 is 87.5%");
    }

    #[test]
    fn queue_length_metric_ignores_capacity() {
        let mut view = view_of(&[(0, 32, 10.0), (1, 2, 0.5)]);
        view.get_mut(InvokerId(0)).unwrap().inflight = 10;
        view.get_mut(InvokerId(1)).unwrap().inflight = 3;
        let mut jsq = Jsq::new(JsqMetric::QueueLength, None);
        // Queue length sends work to the tiny VM — exactly the failure
        // mode the paper calls out.
        let placed = jsq
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(1));
    }

    #[test]
    fn weighted_queue_length_normalizes_by_cpus() {
        let mut view = view_of(&[(0, 32, 0.0), (1, 2, 0.0)]);
        view.get_mut(InvokerId(0)).unwrap().inflight_demand_secs = 16.0; // 0.5 s/cpu
        view.get_mut(InvokerId(1)).unwrap().inflight_demand_secs = 4.0; // 2.0 s/cpu
        let mut jsq = Jsq::new(JsqMetric::WeightedQueueLength, None);
        let placed = jsq
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(0));
    }

    #[test]
    fn skips_unplaceable_invokers() {
        let mut view = view_of(&[(0, 8, 0.0), (1, 8, 5.0)]);
        view.get_mut(InvokerId(0)).unwrap().eviction_pending = true;
        let mut jsq = Jsq::new(JsqMetric::WeightedUtilization, None);
        let placed = jsq
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(1));
    }

    #[test]
    fn empty_fleet_returns_none() {
        let view = ClusterView::new();
        let mut jsq = Jsq::new(JsqMetric::WeightedUtilization, None);
        assert!(jsq
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .is_none());
    }

    #[test]
    fn sampled_variant_places_on_a_candidate() {
        let view = view_of(&[(0, 8, 1.0), (1, 8, 2.0), (2, 8, 3.0), (3, 8, 4.0)]);
        let mut jsq = Jsq::new(JsqMetric::WeightedUtilization, Some(2));
        let mut r = rng();
        for _ in 0..50 {
            let placed = jsq.place(SimTime::ZERO, f(), 256, &view, &mut r).unwrap();
            assert!(placed.0 < 4);
        }
    }

    #[test]
    fn sampled_d_larger_than_fleet_degenerates_to_full_scan() {
        let view = view_of(&[(0, 8, 6.0), (1, 8, 1.0)]);
        let mut jsq = Jsq::new(JsqMetric::WeightedUtilization, Some(10));
        let placed = jsq
            .place(SimTime::ZERO, f(), 256, &view, &mut rng())
            .unwrap();
        assert_eq!(placed, InvokerId(1));
    }

    #[test]
    fn sampling_quality_degrades_gracefully() {
        // With d=1 (random placement) the least-loaded invoker is picked
        // far less often than with a full scan — the paper's "expense of
        // scheduling quality" trade-off.
        let view = view_of(&[(0, 8, 7.0), (1, 8, 7.0), (2, 8, 7.0), (3, 8, 0.0)]);
        let mut full = Jsq::new(JsqMetric::WeightedUtilization, None);
        let mut d1 = Jsq::new(JsqMetric::WeightedUtilization, Some(1));
        let mut r = rng();
        let mut full_best = 0;
        let mut d1_best = 0;
        for _ in 0..200 {
            if full.place(SimTime::ZERO, f(), 256, &view, &mut r) == Some(InvokerId(3)) {
                full_best += 1;
            }
            if d1.place(SimTime::ZERO, f(), 256, &view, &mut r) == Some(InvokerId(3)) {
                d1_best += 1;
            }
        }
        assert_eq!(full_best, 200);
        assert!(d1_best < 150, "d=1 hit the best invoker {d1_best}/200");
    }
}
