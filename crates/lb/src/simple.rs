//! Baseline policies: uniform random and round-robin placement.
//!
//! Neither is in the paper's headline comparison, but both are standard
//! yardsticks for load-balancer evaluations and are used by the ablation
//! benches to separate "any spreading at all" from CPU-aware spreading.

use hrv_trace::faas::FunctionId;
use hrv_trace::time::SimTime;
use rand::RngExt;

use crate::policy::LoadBalancer;
use crate::view::{ClusterView, InvokerId};

/// Uniform random placement over placeable invokers.
#[derive(Debug, Default)]
pub struct Random;

impl Random {
    /// Creates the policy.
    pub fn new() -> Self {
        Random
    }
}

impl LoadBalancer for Random {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn fresh(&self) -> Box<dyn LoadBalancer> {
        Box::new(Random)
    }

    fn place(
        &mut self,
        _now: SimTime,
        _function: FunctionId,
        _memory_mb: u64,
        view: &ClusterView,
        rng: &mut dyn rand::Rng,
    ) -> Option<InvokerId> {
        let candidates: Vec<InvokerId> = view.placeable().map(|v| v.id).collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.random_range(0..candidates.len())])
        }
    }
}

/// Round-robin placement over placeable invokers, in id order.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: u64,
}

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl LoadBalancer for RoundRobin {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    fn fresh(&self) -> Box<dyn LoadBalancer> {
        Box::new(RoundRobin::default())
    }

    fn place(
        &mut self,
        _now: SimTime,
        _function: FunctionId,
        _memory_mb: u64,
        view: &ClusterView,
        _rng: &mut dyn rand::Rng,
    ) -> Option<InvokerId> {
        let candidates: Vec<InvokerId> = view.placeable().map(|v| v.id).collect();
        if candidates.is_empty() {
            return None;
        }
        let pick = candidates[(self.next % candidates.len() as u64) as usize];
        self.next = self.next.wrapping_add(1);
        Some(pick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrv_trace::faas::AppId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::view::InvokerView;

    fn f() -> FunctionId {
        FunctionId {
            app: AppId(0),
            func: 0,
        }
    }

    fn view_of(n: u32) -> ClusterView {
        let mut view = ClusterView::new();
        for i in 0..n {
            view.add(InvokerView::register(InvokerId(i), 8, 1_024, SimTime::ZERO));
        }
        view
    }

    #[test]
    fn round_robin_cycles() {
        let view = view_of(3);
        let mut lb = RoundRobin::new();
        let mut r = StdRng::seed_from_u64(0);
        let picks: Vec<u32> = (0..6)
            .map(|_| lb.place(SimTime::ZERO, f(), 0, &view, &mut r).unwrap().0)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_covers_all_invokers() {
        let view = view_of(4);
        let mut lb = Random::new();
        let mut r = StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(lb.place(SimTime::ZERO, f(), 0, &view, &mut r).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn both_return_none_on_empty_fleet() {
        let view = ClusterView::new();
        let mut r = StdRng::seed_from_u64(0);
        assert!(Random::new()
            .place(SimTime::ZERO, f(), 0, &view, &mut r)
            .is_none());
        assert!(RoundRobin::new()
            .place(SimTime::ZERO, f(), 0, &view, &mut r)
            .is_none());
    }

    #[test]
    fn round_robin_skips_warned() {
        let mut view = view_of(3);
        view.get_mut(InvokerId(1)).unwrap().eviction_pending = true;
        let mut lb = RoundRobin::new();
        let mut r = StdRng::seed_from_u64(0);
        let picks: Vec<u32> = (0..4)
            .map(|_| lb.place(SimTime::ZERO, f(), 0, &view, &mut r).unwrap().0)
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }
}
