//! Fault *processes*: rates and probabilities that compile into plans.
//!
//! A [`FaultSpec`] is declarative — "6 crash-stop kills per hour,
//! 30% of eviction warnings lost, 1% of dispatches dropped" — and
//! [`FaultSpec::compile`] freezes it against a cluster size, a horizon
//! and a [`SeedFactory`] into a concrete [`FaultPlan`]. Each process
//! draws from its own labelled stream, so enabling one fault family
//! never perturbs the draws of another, and a zero-rate process draws
//! nothing at all.

use hrv_trace::dist::{BoundedPareto, Exponential, Sampler};
use hrv_trace::rng::SeedFactory;
use hrv_trace::time::{SimDuration, SimTime};
use rand::RngExt;

use crate::plan::{DispatchFaults, FaultKind, FaultPlan, WarningFault};

/// Parameters of a bounded-Pareto delay: `(lo, hi, alpha)` in seconds.
pub type ParetoParams = (f64, f64, f64);

/// A declarative fault scenario: Poisson rates and Bernoulli
/// probabilities for every fault family the platform can absorb.
///
/// All rates are per hour of simulated time and apply cluster-wide
/// (victims are drawn uniformly among the initial invoker slots).
/// Setting a rate or probability to zero disables that family without
/// consuming any randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Crash-stop invoker kills per hour, cluster-wide.
    pub crashes_per_hour: f64,
    /// Probability that an invoker's eviction warning never arrives.
    pub warning_drop_prob: f64,
    /// Probability (given not dropped) that the warning arrives late.
    pub warning_delay_prob: f64,
    /// Bounded-Pareto parameters of the warning delay, seconds.
    pub warning_delay: ParetoParams,
    /// Probability that a dispatch message is lost.
    pub dispatch_drop_prob: f64,
    /// Probability that a dispatch message is delayed.
    pub dispatch_delay_prob: f64,
    /// Bounded-Pareto parameters of the dispatch delay, seconds.
    pub dispatch_delay: ParetoParams,
    /// Straggler windows opening per hour, cluster-wide.
    pub stragglers_per_hour: f64,
    /// Fraction of allocated CPUs a straggler actually progresses at.
    pub straggler_factor: f64,
    /// How long each straggler window lasts.
    pub straggler_duration: SimDuration,
    /// Cluster-view staleness windows per hour.
    pub staleness_per_hour: f64,
    /// How long each staleness window lasts.
    pub staleness_window: SimDuration,
}

impl FaultSpec {
    /// The fault-free spec: compiles to the zero plan.
    pub fn none() -> Self {
        FaultSpec {
            crashes_per_hour: 0.0,
            warning_drop_prob: 0.0,
            warning_delay_prob: 0.0,
            warning_delay: (5.0, 25.0, 1.5),
            dispatch_drop_prob: 0.0,
            dispatch_delay_prob: 0.0,
            dispatch_delay: (0.05, 2.0, 1.3),
            stragglers_per_hour: 0.0,
            straggler_factor: 0.25,
            straggler_duration: SimDuration::from_secs(60),
            staleness_per_hour: 0.0,
            staleness_window: SimDuration::from_secs(5),
        }
    }

    /// The canonical mixed-fault scenario of the chaos suite, scaled by
    /// `intensity` (0 = fault-free, 1 = nominal, 2 = double rates).
    pub fn chaos(intensity: f64) -> Self {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "chaos intensity must be finite and non-negative, got {intensity}"
        );
        FaultSpec {
            crashes_per_hour: 18.0 * intensity,
            warning_drop_prob: (0.30 * intensity).min(1.0),
            warning_delay_prob: (0.40 * intensity).min(1.0),
            dispatch_drop_prob: (0.01 * intensity).min(0.5),
            dispatch_delay_prob: (0.05 * intensity).min(0.5),
            stragglers_per_hour: 12.0 * intensity,
            staleness_per_hour: 6.0 * intensity,
            ..FaultSpec::none()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on negative rates, probabilities outside `[0, 1]`, a
    /// drop+delay dispatch mass above 1, or a straggler factor outside
    /// `(0, 1]`.
    pub fn validate(&self) {
        let rate = |v: f64, name: &str| {
            assert!(v.is_finite() && v >= 0.0, "{name} must be >= 0, got {v}");
        };
        let prob = |v: f64, name: &str| {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} must be in [0, 1], got {v}"
            );
        };
        rate(self.crashes_per_hour, "crashes_per_hour");
        rate(self.stragglers_per_hour, "stragglers_per_hour");
        rate(self.staleness_per_hour, "staleness_per_hour");
        prob(self.warning_drop_prob, "warning_drop_prob");
        prob(self.warning_delay_prob, "warning_delay_prob");
        prob(self.dispatch_drop_prob, "dispatch_drop_prob");
        prob(self.dispatch_delay_prob, "dispatch_delay_prob");
        assert!(
            self.dispatch_drop_prob + self.dispatch_delay_prob <= 1.0,
            "dispatch drop + delay probability exceeds 1"
        );
        assert!(
            self.straggler_factor > 0.0 && self.straggler_factor <= 1.0,
            "straggler_factor must be in (0, 1], got {}",
            self.straggler_factor
        );
    }

    /// Freezes this spec into a [`FaultPlan`] for a cluster of
    /// `n_invokers` initial slots over `[0, horizon)`.
    ///
    /// Deterministic: the same `(spec, n_invokers, horizon, seeds)`
    /// always yields the same plan. Each fault family draws from its own
    /// labelled stream of `seeds`.
    pub fn compile(&self, n_invokers: u32, horizon: SimDuration, seeds: &SeedFactory) -> FaultPlan {
        self.validate();
        let mut plan = FaultPlan::default();
        if n_invokers == 0 {
            return plan;
        }

        // Crash-stop kills: a cluster-wide Poisson process; each arrival
        // picks a uniform victim slot.
        if self.crashes_per_hour > 0.0 {
            let mut rng = seeds.stream("fault/crash");
            let gap = Exponential::with_rate(self.crashes_per_hour / 3600.0);
            let mut t = SimDuration::from_secs_f64(gap.sample(&mut rng));
            while t < horizon {
                let victim = rng.random_range(0..n_invokers);
                plan.push(SimTime::ZERO + t, FaultKind::Crash { invoker: victim });
                t += SimDuration::from_secs_f64(gap.sample(&mut rng));
            }
        }

        // Warning faults: one roll per invoker slot, from an indexed
        // stream so adding a slot never shifts another slot's fate.
        if self.warning_drop_prob > 0.0 || self.warning_delay_prob > 0.0 {
            let (lo, hi, alpha) = self.warning_delay;
            let delay = BoundedPareto::new(lo, hi, alpha);
            for slot in 0..n_invokers {
                let mut rng = seeds.stream_indexed("fault/warning", u64::from(slot));
                let u: f64 = rng.random();
                if u < self.warning_drop_prob {
                    plan.warnings.insert(slot, WarningFault::Drop);
                } else if u < self.warning_drop_prob + self.warning_delay_prob {
                    let secs = delay.sample(&mut rng);
                    plan.warnings
                        .insert(slot, WarningFault::Delay(SimDuration::from_secs_f64(secs)));
                }
            }
        }

        // Straggler windows: Poisson openings, fixed derate and duration.
        if self.stragglers_per_hour > 0.0 {
            let mut rng = seeds.stream("fault/straggler");
            let gap = Exponential::with_rate(self.stragglers_per_hour / 3600.0);
            let mut t = SimDuration::from_secs_f64(gap.sample(&mut rng));
            while t < horizon {
                let victim = rng.random_range(0..n_invokers);
                plan.push(
                    SimTime::ZERO + t,
                    FaultKind::StragglerStart {
                        invoker: victim,
                        factor: self.straggler_factor,
                    },
                );
                plan.push(
                    SimTime::ZERO + t + self.straggler_duration,
                    FaultKind::StragglerEnd { invoker: victim },
                );
                t += SimDuration::from_secs_f64(gap.sample(&mut rng));
            }
        }

        // View staleness windows: Poisson freezes of the controller view.
        if self.staleness_per_hour > 0.0 {
            let mut rng = seeds.stream("fault/staleness");
            let gap = Exponential::with_rate(self.staleness_per_hour / 3600.0);
            let mut t = SimDuration::from_secs_f64(gap.sample(&mut rng));
            while t < horizon {
                plan.push(SimTime::ZERO + t, FaultKind::ViewFreeze);
                plan.push(
                    SimTime::ZERO + t + self.staleness_window,
                    FaultKind::ViewThaw,
                );
                t += SimDuration::from_secs_f64(gap.sample(&mut rng));
            }
        }

        // Dispatch faults stay a runtime process; only the seed is drawn
        // here (derived, not sampled, so the stream stays untouched).
        if self.dispatch_drop_prob > 0.0 || self.dispatch_delay_prob > 0.0 {
            let (lo, hi, alpha) = self.dispatch_delay;
            plan.dispatch = Some(DispatchFaults {
                drop_prob: self.dispatch_drop_prob,
                delay_prob: self.dispatch_delay_prob,
                delay: BoundedPareto::new(lo, hi, alpha),
                seed: seeds.seed_for("fault/dispatch"),
            });
        }

        plan.finish();
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_spec_compiles_to_zero_plan() {
        let seeds = SeedFactory::new(1);
        let plan = FaultSpec::none().compile(8, SimDuration::from_hours(1), &seeds);
        assert!(plan.is_zero());
        assert!(FaultSpec::chaos(0.0)
            .compile(8, SimDuration::from_hours(1), &seeds)
            .is_zero());
    }

    #[test]
    fn compile_is_deterministic() {
        let spec = FaultSpec::chaos(1.0);
        let seeds = SeedFactory::new(42).child("faults");
        let a = spec.compile(16, SimDuration::from_hours(2), &seeds);
        let b = spec.compile(16, SimDuration::from_hours(2), &seeds);
        assert_eq!(a, b);
        assert!(!a.is_zero());
        // A different root seed gives a different plan.
        let c = spec.compile(16, SimDuration::from_hours(2), &SeedFactory::new(43));
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_sorted_and_in_horizon_targets_in_range() {
        let spec = FaultSpec::chaos(2.0);
        let horizon = SimDuration::from_hours(4);
        let plan = spec.compile(5, horizon, &SeedFactory::new(7));
        let mut last = SimTime::ZERO;
        for e in &plan.events {
            assert!(e.at >= last, "events not sorted");
            last = e.at;
            match e.kind {
                FaultKind::Crash { invoker }
                | FaultKind::StragglerStart { invoker, .. }
                | FaultKind::StragglerEnd { invoker } => assert!(invoker < 5),
                FaultKind::ViewFreeze | FaultKind::ViewThaw => {}
            }
        }
        // Window *openings* land inside the horizon (closings may spill).
        for e in &plan.events {
            if matches!(
                e.kind,
                FaultKind::Crash { .. } | FaultKind::StragglerStart { .. } | FaultKind::ViewFreeze
            ) {
                assert!(e.at < SimTime::ZERO + horizon);
            }
        }
    }

    #[test]
    fn intensity_scales_event_count() {
        let seeds = SeedFactory::new(11);
        let h = SimDuration::from_hours(8);
        let lo = FaultSpec::chaos(0.5).compile(10, h, &seeds);
        let hi = FaultSpec::chaos(4.0).compile(10, h, &seeds);
        assert!(hi.events.len() > lo.events.len());
        assert!(hi.warnings.len() >= lo.warnings.len());
    }

    #[test]
    fn independent_families_do_not_perturb_each_other() {
        // Enabling stragglers must not change the crash draws.
        let seeds = SeedFactory::new(5);
        let h = SimDuration::from_hours(2);
        let mut only_crash = FaultSpec::none();
        only_crash.crashes_per_hour = 12.0;
        let mut both = only_crash;
        both.stragglers_per_hour = 12.0;
        let crashes = |p: &FaultPlan| {
            p.events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
                .copied()
                .collect::<Vec<_>>()
        };
        let a = only_crash.compile(6, h, &seeds);
        let b = both.compile(6, h, &seeds);
        assert_eq!(crashes(&a), crashes(&b));
    }

    #[test]
    #[should_panic(expected = "straggler_factor")]
    fn validate_rejects_zero_straggler_factor() {
        let mut spec = FaultSpec::none();
        spec.straggler_factor = 0.0;
        spec.stragglers_per_hour = 1.0;
        spec.compile(2, SimDuration::from_hours(1), &SeedFactory::new(1));
    }
}
