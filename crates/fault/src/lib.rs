//! Deterministic fault injection for the harvest-serverless platform.
//!
//! The paper's Section 4 judges eviction-handling strategies by how much
//! in-flight work they destroy — but the only failure the platform models
//! natively is the *cooperative* Harvest-VM eviction, announced 30 seconds
//! in advance. Real control planes also face crash-stop workers, lost or
//! late eviction warnings, dropped dispatch messages, silently slow
//! machines, and stale cluster views. This crate expresses those as data.
//!
//! The design splits *what can go wrong* from *when it goes wrong*:
//!
//! * [`spec::FaultSpec`] describes fault **processes** — Poisson rates for
//!   crash-stop kills, straggler windows and view-staleness windows,
//!   probabilities for warning loss/delay, and a Bernoulli/Pareto model
//!   for dispatch-message loss and delay.
//! * [`spec::FaultSpec::compile`] draws from a [`SeedFactory`] and
//!   freezes the processes into a [`plan::FaultPlan`]: a sorted list of
//!   timed [`plan::FaultEvent`]s plus per-invoker warning faults and a
//!   seeded runtime sampler for dispatch faults.
//!
//! The platform consumes only the *plan*, scheduling its events into the
//! discrete-event calendar at world-build time. Because every draw comes
//! from labelled [`SeedFactory`] streams, the same spec, seed and cluster
//! shape always produce byte-identical chaos runs — and the zero plan
//! ([`plan::FaultPlan::default`]) compiles to *no* events, *no* extra RNG
//! draws and *no* behavioural change, so fault-free runs stay bit-identical
//! to a build without this crate linked in.
//!
//! [`SeedFactory`]: hrv_trace::rng::SeedFactory

pub mod plan;
pub mod spec;

pub use plan::{
    DispatchFaults, DispatchOutcome, DispatchSampler, FaultEvent, FaultKind, FaultPlan,
    WarningFault,
};
pub use spec::FaultSpec;
