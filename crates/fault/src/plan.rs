//! Compiled fault plans: timed events plus runtime samplers.
//!
//! A [`FaultPlan`] is the frozen, replayable form of a fault scenario.
//! All randomness has either already been drawn (timed events, warning
//! faults) or is pinned to an embedded seed (the dispatch sampler), so a
//! plan injected twice into identical worlds produces identical runs.

use std::collections::BTreeMap;

use hrv_trace::dist::{BoundedPareto, Sampler};
use hrv_trace::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Index of the targeted invoker slot, matching the platform's
/// `InvokerIndex` (position in the cluster's VM list).
pub type InvokerSlot = u32;

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Crash-stop kill: the VM vanishes instantly with no eviction
    /// warning and no notification to the controller. Unlike a Harvest
    /// eviction, nothing announces the death — detection (if any) is the
    /// health-probe machinery's job.
    Crash { invoker: InvokerSlot },
    /// The invoker's effective processor-sharing capacity drops to
    /// `factor` of its allocated CPUs. The slowdown is invisible in
    /// health reports except through rising queue pressure.
    StragglerStart { invoker: InvokerSlot, factor: f64 },
    /// The straggler window ends; capacity returns to the allocation.
    StragglerEnd { invoker: InvokerSlot },
    /// The controller's cluster view freezes: health pings are dropped
    /// until the matching [`FaultKind::ViewThaw`], so placement decisions
    /// run on stale load and liveness information.
    ViewFreeze,
    /// The staleness window ends; pings flow again.
    ViewThaw,
}

/// A fault pinned to a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

/// What happens to one invoker's 30-second eviction warning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarningFault {
    /// The warning never arrives: the eviction lands unannounced.
    Drop,
    /// The warning arrives late by this much; if the delay pushes it past
    /// the eviction itself, it is effectively dropped.
    Delay(SimDuration),
}

/// Parameters of the controller→invoker dispatch-message fault process.
///
/// Each dispatch independently rolls: drop with probability `drop_prob`,
/// else delay with probability `delay_prob` by a bounded-Pareto-sampled
/// duration, else deliver normally. The embedded `seed` makes the roll
/// sequence part of the plan, so replays are exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchFaults {
    pub drop_prob: f64,
    pub delay_prob: f64,
    /// Delay distribution, in seconds.
    pub delay: BoundedPareto,
    pub seed: u64,
}

impl DispatchFaults {
    /// Builds the runtime sampler for this process.
    pub fn sampler(&self) -> DispatchSampler {
        DispatchSampler {
            cfg: *self,
            rng: StdRng::seed_from_u64(self.seed),
        }
    }
}

/// Outcome of one dispatch-fault roll.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchOutcome {
    /// The message goes through at the nominal bus latency.
    Deliver,
    /// The message arrives, but this much later than the bus latency.
    Delay(SimDuration),
    /// The message is lost in flight.
    Drop,
}

/// Stateful per-run sampler over a [`DispatchFaults`] process.
#[derive(Debug)]
pub struct DispatchSampler {
    cfg: DispatchFaults,
    rng: StdRng,
}

impl DispatchSampler {
    /// Rolls the fate of one dispatch message.
    pub fn roll(&mut self) -> DispatchOutcome {
        let u: f64 = self.rng.random();
        if u < self.cfg.drop_prob {
            return DispatchOutcome::Drop;
        }
        if u < self.cfg.drop_prob + self.cfg.delay_prob {
            let secs = self.cfg.delay.sample(&mut self.rng);
            return DispatchOutcome::Delay(SimDuration::from_secs_f64(secs));
        }
        DispatchOutcome::Deliver
    }
}

/// A frozen fault scenario, ready to inject into a platform world.
///
/// The default value is the **zero plan**: no events, no warning faults,
/// no dispatch process. Injecting it is contractually a no-op — the
/// platform schedules nothing extra and draws no extra randomness, so a
/// zero-plan run is byte-identical to one that never saw this crate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Timed faults, sorted by time (ties keep insertion order).
    pub events: Vec<FaultEvent>,
    /// Per-invoker eviction-warning faults, applied when the world
    /// schedules each VM's warning.
    pub warnings: BTreeMap<InvokerSlot, WarningFault>,
    /// Dispatch-message fault process, if any.
    pub dispatch: Option<DispatchFaults>,
}

impl FaultPlan {
    /// The zero plan (alias for [`Default::default`], for call-site
    /// clarity).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when injecting this plan changes nothing.
    pub fn is_zero(&self) -> bool {
        self.events.is_empty() && self.warnings.is_empty() && self.dispatch.is_none()
    }

    /// The warning fault for `invoker`, if any.
    pub fn warning_fault(&self, invoker: InvokerSlot) -> Option<WarningFault> {
        self.warnings.get(&invoker).copied()
    }

    /// Appends a timed fault (re-sorts on [`FaultPlan::finish`]).
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Sorts events by time, keeping insertion order for ties so plans
    /// built from the same draws are identical.
    pub fn finish(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_zero() {
        assert!(FaultPlan::none().is_zero());
        assert!(FaultPlan::default().is_zero());
        let mut p = FaultPlan::default();
        p.push(SimTime::from_secs(1), FaultKind::ViewFreeze);
        assert!(!p.is_zero());
    }

    #[test]
    fn finish_sorts_stably() {
        let mut p = FaultPlan::default();
        p.push(SimTime::from_secs(5), FaultKind::ViewThaw);
        p.push(SimTime::from_secs(1), FaultKind::Crash { invoker: 0 });
        p.push(SimTime::from_secs(5), FaultKind::ViewFreeze);
        p.finish();
        assert_eq!(p.events[0].kind, FaultKind::Crash { invoker: 0 });
        // Equal timestamps keep insertion order.
        assert_eq!(p.events[1].kind, FaultKind::ViewThaw);
        assert_eq!(p.events[2].kind, FaultKind::ViewFreeze);
    }

    #[test]
    fn dispatch_sampler_replays_identically() {
        let cfg = DispatchFaults {
            drop_prob: 0.1,
            delay_prob: 0.3,
            delay: BoundedPareto::new(0.05, 2.0, 1.3),
            seed: 99,
        };
        let mut a = cfg.sampler();
        let mut b = cfg.sampler();
        for _ in 0..512 {
            assert_eq!(a.roll(), b.roll());
        }
    }

    #[test]
    fn dispatch_sampler_hits_all_outcomes() {
        let cfg = DispatchFaults {
            drop_prob: 0.2,
            delay_prob: 0.3,
            delay: BoundedPareto::new(0.05, 2.0, 1.3),
            seed: 7,
        };
        let mut s = cfg.sampler();
        let (mut drops, mut delays, mut delivers) = (0u32, 0u32, 0u32);
        for _ in 0..2_000 {
            match s.roll() {
                DispatchOutcome::Drop => drops += 1,
                DispatchOutcome::Delay(d) => {
                    assert!(d > SimDuration::ZERO);
                    delays += 1;
                }
                DispatchOutcome::Deliver => delivers += 1,
            }
        }
        // Loose frequency sanity: 20% / 30% / 50% within wide bands.
        assert!((300..=500).contains(&drops), "drops = {drops}");
        assert!((450..=750).contains(&delays), "delays = {delays}");
        assert!((800..=1200).contains(&delivers), "delivers = {delivers}");
    }
}
